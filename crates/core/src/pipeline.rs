//! Compiler pipelines: the phase orderings of Tables 1 and 3.
//!
//! | Label    | Phases                                                        |
//! |----------|---------------------------------------------------------------|
//! | `BB`     | basic blocks as TRIPS blocks (scalar opts only)               |
//! | `UPIO`   | discrete CFG unroll/peel → incremental if-conversion → opts   |
//! | `IUPO`   | incremental if-conversion → hyperblock unroll/peel → opts     |
//! | `(IUP)O` | convergent formation with head duplication, opts once at end  |
//! | `(IUPO)` | full convergent formation with iterative scalar optimization  |
//!
//! Incremental if-conversion (the `I` phase) always uses tail duplication
//! and respects the structural constraints; only the grouped orderings may
//! use head duplication (unrolling/peeling *during* formation), and only
//! `(IUPO)` optimizes inside the formation loop.

use crate::constraints::BlockConstraints;
use crate::convergent::{
    form_hyperblocks_with_profile, FormationConfig, FormationStats, SeedOrder,
};
use crate::fanout::insert_fanout;
use crate::policy::PolicyKind;
use crate::regalloc::{allocate_registers, RegFileSpec};
use crate::reverse::split_oversized;
use crate::unroll::{cfg_unroll_and_peel, hyperblock_unroll_peel, UnrollParams};
use chf_ir::function::Function;
use chf_ir::profile::ProfileData;

/// The five configurations of Table 1 / Table 3.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PhaseOrdering {
    /// Basic blocks only (the baseline column `BB`).
    BasicBlocks,
    /// Unroll/peel, then if-convert, then optimize.
    Upio,
    /// If-convert, then unroll/peel, then optimize.
    Iupo,
    /// Convergent `(IUP)` with optimization once at the end.
    IupThenO,
    /// Fully convergent `(IUPO)`.
    Iupo_,
}

impl PhaseOrdering {
    /// Column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PhaseOrdering::BasicBlocks => "BB",
            PhaseOrdering::Upio => "UPIO",
            PhaseOrdering::Iupo => "IUPO",
            PhaseOrdering::IupThenO => "(IUP)O",
            PhaseOrdering::Iupo_ => "(IUPO)",
        }
    }

    /// The four hyperblock-forming orderings compared against `BB`.
    pub fn table1() -> [PhaseOrdering; 4] {
        [
            PhaseOrdering::Upio,
            PhaseOrdering::Iupo,
            PhaseOrdering::IupThenO,
            PhaseOrdering::Iupo_,
        ]
    }
}

/// Full compiler configuration.
#[derive(Clone, Debug)]
pub struct CompileConfig {
    /// Which phase ordering to run.
    pub ordering: PhaseOrdering,
    /// Block-selection policy for the formation phases.
    pub policy: PolicyKind,
    /// Structural constraints of the target.
    pub constraints: BlockConstraints,
    /// Parameters of the discrete unroll/peel phases.
    pub unroll: UnrollParams,
    /// Run the §6 backend stages (register allocation with spilling, and
    /// fanout insertion) after formation. On by default; the TRIPS register
    /// file is large enough that spills are rare, and fanout fits in the
    /// constraints' headroom.
    pub backend: bool,
    /// Maximum consumers one instruction may feed before fanout movs are
    /// inserted (TRIPS encodes a small fixed number of targets).
    pub fanout_targets: usize,
    /// Per-function cap on formation trials (merge attempts). `None`
    /// reproduces the historical unbounded behavior; `Some(k)` makes the
    /// formation phases share a ledger of `k` trials per function, with
    /// skipped work recorded in [`FormationStats::budget_skipped`]. Used
    /// by the Table 2 budget ablation to compare policies at equal cost.
    pub trial_budget: Option<usize>,
    /// Wall-clock deadline for the formation phases, checked between merge
    /// trials (the same ledger point as `trial_budget`, so expiry is
    /// *graceful*: formation keeps whatever blocks it has already formed,
    /// runs the backend, and reports the cut via
    /// [`FormationStats::deadline_hit`] — the anytime behaviour of the
    /// paper's convergent loop). `None` (the default) never expires. The
    /// compile service derives this from its per-request deadline.
    pub deadline: Option<std::time::Instant>,
    /// Deterministic mid-trial fault injection forwarded to
    /// [`FormationConfig::chaos`]: periodically corrupts the merged block
    /// inside the trial window so the verify-and-rollback net is exercised
    /// end-to-end through the pipeline. `None` (the default) injects
    /// nothing; only the chaos harness and the service soak set it.
    pub chaos: Option<crate::chaos::ChaosSpec>,
}

impl CompileConfig {
    /// The paper's best configuration: `(IUPO)` with the breadth-first
    /// policy.
    pub fn convergent() -> Self {
        CompileConfig {
            ordering: PhaseOrdering::Iupo_,
            policy: PolicyKind::BreadthFirst,
            constraints: BlockConstraints::trips(),
            unroll: UnrollParams::default(),
            backend: true,
            fanout_targets: 4,
            trial_budget: None,
            deadline: None,
            chaos: None,
        }
    }

    /// A named ordering with the breadth-first policy.
    pub fn with_ordering(ordering: PhaseOrdering) -> Self {
        CompileConfig {
            ordering,
            ..Self::convergent()
        }
    }

    /// A policy variant of the convergent configuration (Table 2).
    pub fn with_policy(policy: PolicyKind, iterative_opt: bool) -> Self {
        let ordering = if iterative_opt {
            PhaseOrdering::Iupo_
        } else {
            PhaseOrdering::IupThenO
        };
        CompileConfig {
            ordering,
            policy,
            ..Self::convergent()
        }
    }
}

impl Default for CompileConfig {
    fn default() -> Self {
        Self::convergent()
    }
}

/// Result of compilation.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The compiled function.
    pub function: Function,
    /// Static transformation counts (the paper's `m/t/u/p`).
    pub stats: FormationStats,
}

fn formation_config(config: &CompileConfig, head: bool, iterative_opt: bool) -> FormationConfig {
    FormationConfig {
        constraints: config.constraints.clone(),
        head_duplication: head,
        tail_duplication: true,
        iterative_opt,
        trial_budget: config.trial_budget,
        deadline: config.deadline,
        chaos: config.chaos,
        // The profile-guided policy also reorders the expansion *seeds* by
        // hot-edge weight, so under a constrained trial budget the ledger
        // is spent on the hottest regions first.
        seed_order: if config.policy == PolicyKind::HotFirst {
            SeedOrder::HotFirst
        } else {
            SeedOrder::Frequency
        },
        // `verify_trials` (and the disabled oracle hook) come from the
        // default: every pipeline formation runs under the mid-trial
        // verify-and-rollback safety net.
        ..FormationConfig::default()
    }
}

/// Compile `f` under `config`, using `profile` for frequencies and trip
/// histograms (gathered from a training run of the basic-block form).
///
/// Infallible wrapper over [`try_compile`] for callers that treat a
/// malformed compilation as a programming error.
///
/// # Panics
/// Panics if [`try_compile`] reports an error. Harness code that must
/// degrade gracefully (the parallel evaluation tables) calls
/// [`try_compile`] instead.
pub fn compile(f: &Function, profile: &ProfileData, config: &CompileConfig) -> Compiled {
    try_compile(f, profile, config).unwrap_or_else(|e| panic!("compilation failed: {e}"))
}

/// Compile `f` under `config`, reporting (rather than panicking on) a
/// malformed result.
///
/// Formation-internal containment still applies: trials the verifier
/// rejects are rolled back and counted in [`FormationStats::skipped`],
/// and the compilation proceeds on the remaining candidates. The error
/// path here is the *final* gate — the fully compiled function failing
/// structural verification.
///
/// # Errors
/// [`crate::ChfError::Verify`] when the compiled output is structurally
/// invalid.
pub fn try_compile(
    f: &Function,
    profile: &ProfileData,
    config: &CompileConfig,
) -> Result<Compiled, crate::ChfError> {
    let mut f = f.clone();
    profile.apply(&mut f);
    let mut stats = FormationStats::default();
    let mut policy = config.policy.instantiate();

    match config.ordering {
        PhaseOrdering::BasicBlocks => {
            chf_opt::optimize(&mut f);
        }
        PhaseOrdering::Upio => {
            // U, P on the basic-block CFG (inaccurate size estimates).
            let up = cfg_unroll_and_peel(&mut f, profile, &config.unroll);
            stats.unrolls += up.unrolls;
            stats.peels += up.peels;
            // I: incremental if-conversion with tail duplication only.
            let fs = form_hyperblocks_with_profile(
                &mut f,
                policy.as_mut(),
                &formation_config(config, false, false),
                Some(profile),
            );
            stats.merge(&fs);
            // O.
            chf_opt::optimize(&mut f);
        }
        PhaseOrdering::Iupo => {
            // I.
            let fs = form_hyperblocks_with_profile(
                &mut f,
                policy.as_mut(),
                &formation_config(config, false, false),
                Some(profile),
            );
            stats.merge(&fs);
            // U, P at hyperblock granularity (accurate size estimates).
            let up = hyperblock_unroll_peel(&mut f, profile, &config.constraints, &config.unroll);
            stats.unrolls += up.unrolls;
            stats.peels += up.peels;
            // O.
            chf_opt::optimize(&mut f);
        }
        PhaseOrdering::IupThenO => {
            let fs = form_hyperblocks_with_profile(
                &mut f,
                policy.as_mut(),
                &formation_config(config, true, false),
                Some(profile),
            );
            stats.merge(&fs);
            chf_opt::optimize(&mut f);
        }
        PhaseOrdering::Iupo_ => {
            let fs = form_hyperblocks_with_profile(
                &mut f,
                policy.as_mut(),
                &formation_config(config, true, true),
                Some(profile),
            );
            stats.merge(&fs);
            chf_opt::optimize(&mut f);
        }
    }

    // Backend (§6): register allocation (spilling on pressure), fanout
    // insertion, then reverse if-conversion for any block the insertions
    // pushed over the constraints.
    if config.backend {
        allocate_registers(&mut f, &RegFileSpec::trips());
        insert_fanout(&mut f, config.fanout_targets);
    }
    split_oversized(&mut f, &config.constraints);
    chf_ir::cfg::remove_unreachable(&mut f);
    chf_ir::verify::verify(&f).map_err(|error| crate::ChfError::Verify {
        context: "compiled output",
        error,
    })?;

    let (insts, mem, banks) = block_utilization(&f, &config.constraints);
    stats.util_insts_permille = insts;
    stats.util_mem_permille = mem;
    stats.util_bank_permille = banks;

    Ok(Compiled { function: f, stats })
}

/// Mean block utilization of the final artifact against the structural
/// constraints, in permille: instruction slots per `max_insts`, memory ops
/// per `max_memory_ops`, and register-bank port pressure (reads + writes)
/// per total bank ports. TRIPS blocks are fixed 128-instruction instances,
/// so every point below 1000 is fetch/map bandwidth an underfull
/// hyperblock wastes — the dual of the merge constraints, and the signal a
/// future split pass would act on.
fn block_utilization(f: &Function, c: &BlockConstraints) -> (u32, u32, u32) {
    let liveness = chf_ir::liveness::Liveness::compute(f);
    let bank_ports = c.reg_banks as usize * (c.reads_per_bank + c.writes_per_bank);
    let (mut n, mut insts_pm, mut mem_pm, mut bank_pm) = (0usize, 0usize, 0usize, 0usize);
    for (id, blk) in f.blocks() {
        n += 1;
        insts_pm += (blk.size() * 1000 / c.max_insts.max(1)).min(1000);
        mem_pm += (blk.memory_ops() * 1000 / c.max_memory_ops.max(1)).min(1000);
        let ports = liveness.register_reads(id).len() + liveness.register_writes(id).len();
        bank_pm += (ports * 1000 / bank_ports.max(1)).min(1000);
    }
    if n == 0 {
        return (0, 0, 0);
    }
    (
        (insts_pm / n) as u32,
        (mem_pm / n) as u32,
        (bank_pm / n) as u32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Operand;
    use chf_ir::verify::verify;
    use chf_sim::functional::{profile_run, run, RunConfig};

    fn reg(r: chf_ir::ids::Reg) -> Operand {
        Operand::Reg(r)
    }

    /// A small nested-loop program exercising every phase.
    fn workload() -> (Function, Vec<i64>) {
        let mut fb = FunctionBuilder::new("w", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let inner_h = fb.create_block();
        let inner_b = fb.create_block();
        let latch = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(c, inner_h, exit);
        fb.switch_to(inner_h);
        let j = fb.mov(Operand::Imm(0));
        fb.jump(inner_b);
        fb.switch_to(inner_b);
        let a2 = fb.add(reg(acc), reg(j));
        fb.mov_to(acc, reg(a2));
        let j2 = fb.add(reg(j), Operand::Imm(1));
        fb.mov_to(j, reg(j2));
        let c2 = fb.cmp_lt(reg(j), Operand::Imm(3));
        fb.branch(c2, inner_b, latch);
        fb.switch_to(latch);
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(reg(acc)));
        (fb.build().unwrap(), vec![12])
    }

    #[test]
    fn all_orderings_preserve_behaviour() {
        let (f, args) = workload();
        let profile = profile_run(&f, &args, &[]).unwrap();
        let base = run(&f, &args, &[], &RunConfig::default()).unwrap();
        for ordering in [
            PhaseOrdering::BasicBlocks,
            PhaseOrdering::Upio,
            PhaseOrdering::Iupo,
            PhaseOrdering::IupThenO,
            PhaseOrdering::Iupo_,
        ] {
            let c = compile(&f, &profile, &CompileConfig::with_ordering(ordering));
            verify(&c.function).unwrap();
            let r = run(&c.function, &args, &[], &RunConfig::default()).unwrap();
            assert_eq!(
                r.digest(),
                base.digest(),
                "{} changed behaviour",
                ordering.label()
            );
        }
    }

    #[test]
    fn hyperblock_orderings_reduce_block_counts() {
        let (f, args) = workload();
        let profile = profile_run(&f, &args, &[]).unwrap();
        let base = run(&f, &args, &[], &RunConfig::default()).unwrap();
        for ordering in PhaseOrdering::table1() {
            let c = compile(&f, &profile, &CompileConfig::with_ordering(ordering));
            let r = run(&c.function, &args, &[], &RunConfig::default()).unwrap();
            assert!(
                r.blocks_executed < base.blocks_executed,
                "{}: {} !< {}",
                ordering.label(),
                r.blocks_executed,
                base.blocks_executed
            );
        }
    }

    #[test]
    fn convergent_at_least_matches_discrete_on_block_counts() {
        let (f, args) = workload();
        let profile = profile_run(&f, &args, &[]).unwrap();
        let count = |o: PhaseOrdering| {
            let c = compile(&f, &profile, &CompileConfig::with_ordering(o));
            run(&c.function, &args, &[], &RunConfig::default())
                .unwrap()
                .blocks_executed
        };
        let upio = count(PhaseOrdering::Upio);
        let convergent = count(PhaseOrdering::Iupo_);
        assert!(
            convergent <= upio,
            "convergent {convergent} should not exceed UPIO {upio}"
        );
    }

    #[test]
    fn compiled_blocks_respect_constraints() {
        let (f, args) = workload();
        let profile = profile_run(&f, &args, &[]).unwrap();
        let c = compile(&f, &profile, &CompileConfig::convergent());
        // Size/memory constraints must hold post-compilation.
        for (b, blk) in c.function.blocks() {
            assert!(
                blk.size() <= BlockConstraints::trips().effective_max_insts(),
                "block {b} oversized"
            );
            assert!(blk.memory_ops() <= 32);
        }
    }

    #[test]
    fn stats_populated_for_convergent() {
        let (f, args) = workload();
        let profile = profile_run(&f, &args, &[]).unwrap();
        let c = compile(&f, &profile, &CompileConfig::convergent());
        assert!(c.stats.merges > 0);
        assert!(!c.stats.mtup().is_empty());
    }

    #[test]
    fn policies_all_compile_correctly() {
        let (f, args) = workload();
        let profile = profile_run(&f, &args, &[]).unwrap();
        let base = run(&f, &args, &[], &RunConfig::default()).unwrap();
        for policy in [
            PolicyKind::BreadthFirst,
            PolicyKind::DepthFirst,
            PolicyKind::Vliw,
        ] {
            for iter_opt in [false, true] {
                let c = compile(&f, &profile, &CompileConfig::with_policy(policy, iter_opt));
                let r = run(&c.function, &args, &[], &RunConfig::default()).unwrap();
                assert_eq!(
                    r.digest(),
                    base.digest(),
                    "{:?}/{iter_opt} changed behaviour",
                    policy
                );
            }
        }
    }
}
