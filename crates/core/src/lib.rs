#![warn(missing_docs)]
//! # chf-core — convergent hyperblock formation
//!
//! The primary contribution of *"Merging Head and Tail Duplication for
//! Convergent Hyperblock Formation"* (Maher, Smith, Burger, McKinley —
//! MICRO 2006): an algorithm that iteratively applies if-conversion,
//! peeling, unrolling, and scalar optimizations until hyperblocks converge
//! on the structural constraints of an EDGE (TRIPS) ISA.
//!
//! Module map (paper section in parentheses):
//!
//! * [`constraints`] — the TRIPS structural block constraints (§2);
//! * [`ifconvert`] — `Combine`: predicates a successor into a hyperblock (§4.1);
//! * [`duplication`] — the unified duplication step behind tail duplication,
//!   peeling, and unrolling (§4.1, Figures 2–4);
//! * [`convergent`] — `ExpandBlock` / `MergeBlocks` (§4.2, Figure 5);
//! * [`policy`] — breadth-first, depth-first, and VLIW block selection (§5);
//! * [`tournament`] — adaptive per-function policy portfolios: compile
//!   every `(policy, budget)` entrant, score on the training input, keep
//!   the winner (beyond the paper; the service caches winners by CFG
//!   shape);
//! * [`unroll`] — discrete profile-driven loop unrolling/peeling used by the
//!   classical phase-ordering baselines (§3, §7.1);
//! * [`reverse`] — reverse if-conversion / block splitting (§6);
//! * [`pipeline`] — the compiler configurations of Tables 1–3: `BB`, `UPIO`,
//!   `IUPO`, `(IUP)O`, `(IUPO)`.
//!
//! Robustness layer (not in the paper, required to trust its numbers):
//!
//! * [`error`] — the typed error carried by contained formation failures;
//! * [`chaos`] — seeded fault injection and the campaign driver
//!   (`CHF_FAULT_SEED`);
//! * [`oracle`] — the per-commit differential oracle and its greedy
//!   reproducer-writing reducer.

pub mod chaos;
pub mod constraints;
pub mod convergent;
pub mod duplication;
pub mod error;
pub mod fanout;
pub mod forloop;
pub mod ifconvert;
pub mod oracle;
pub mod pipeline;
pub mod policy;
pub mod regalloc;
pub mod reverse;
pub mod tournament;
pub mod unroll;

pub use chaos::{campaign, CampaignReport, ChaosSpec, FaultKind, KindTally};
pub use constraints::BlockConstraints;
pub use convergent::{
    form_hyperblocks, form_hyperblocks_with_profile, FormationConfig, FormationStats, SeedOrder,
};
pub use error::ChfError;
pub use oracle::OracleConfig;
pub use pipeline::{compile, try_compile, CompileConfig, Compiled, PhaseOrdering};
pub use policy::PolicyKind;
pub use tournament::{run_tournament, ScoreMetric, TournamentConfig, TournamentResult};
