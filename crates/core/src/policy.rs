//! Block-selection policies (paper §5).
//!
//! `ExpandBlock` asks a [`Policy`] which candidate successor to try merging
//! next. Three policies from the paper:
//!
//! * **Breadth-first** (the best EDGE heuristic in Table 2): merge
//!   candidates in discovery order, so both arms of a branch are merged
//!   before anything deeper. This removes conditional branches (better
//!   next-block prediction) and limits tail duplication, at the cost of
//!   including some useless instructions.
//! * **Depth-first**: follow the most frequent path as deep as possible
//!   first, then come back for the rest if space remains. Includes more
//!   useful instructions but risks mispredictions and extra tail
//!   duplication.
//! * **VLIW** (Mahlke et al.): a prepass computes per-block dependence
//!   heights; selection prioritizes frequent, short-dependence-height
//!   blocks and *excludes* rarely-taken or high-dependence-height blocks —
//!   correct for a statically-scheduled VLIW, but on an EDGE machine the
//!   exclusions force tail duplication and predicated induction-variable
//!   updates (the bzip2_3 and parser_1 pathologies of §7.2).

use chf_ir::function::Function;
use chf_ir::ids::BlockId;
use chf_ir::instr::Operand;
use std::collections::HashMap;

/// A candidate successor for merging, annotated by the driver.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The block to merge.
    pub block: BlockId,
    /// Discovery sequence number (0 = first discovered).
    pub order: usize,
    /// Number of merges that had happened when this was discovered — a
    /// proxy for path depth from the seed block.
    pub depth: usize,
    /// Estimated probability that a dynamic execution of the hyperblock
    /// reaches this candidate.
    pub prob: f64,
}

/// A block-selection heuristic.
pub trait Policy {
    /// Diagnostic name.
    fn name(&self) -> &'static str;

    /// Prepass analysis over the original CFG (before any merging).
    fn prepare(&mut self, _f: &Function) {}

    /// Index of the candidate to try next, or `None` to stop expanding.
    fn select(&mut self, f: &Function, hb: BlockId, candidates: &[Candidate]) -> Option<usize>;
}

/// Breadth-first selection: strict discovery order.
#[derive(Debug, Default)]
pub struct BreadthFirst;

impl Policy for BreadthFirst {
    fn name(&self) -> &'static str {
        "breadth-first"
    }

    fn select(&mut self, _f: &Function, _hb: BlockId, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.depth, c.order))
            .map(|(i, _)| i)
    }
}

/// Depth-first selection: deepest first, hottest arm first.
#[derive(Debug, Default)]
pub struct DepthFirst;

impl Policy for DepthFirst {
    fn name(&self) -> &'static str {
        "depth-first"
    }

    fn select(&mut self, _f: &Function, _hb: BlockId, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                (a.depth, a.prob, a.order)
                    .partial_cmp(&(b.depth, b.prob, b.order))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
    }
}

/// Breadth-first selection with lookahead (§5, "Local and global
/// heuristics"): like [`BreadthFirst`], but candidates that *reconverge*
/// with another candidate's region within a small horizon are preferred —
/// merging them closes the current diamond and yields a larger single-exit
/// hyperblock, which improves next-block predictability.
#[derive(Debug)]
pub struct BreadthFirstLookahead {
    /// How many CFG steps to scan for reconvergence.
    pub horizon: usize,
}

impl Default for BreadthFirstLookahead {
    fn default() -> Self {
        BreadthFirstLookahead { horizon: 3 }
    }
}

impl BreadthFirstLookahead {
    /// Blocks reachable from `start` within `horizon` steps.
    fn reachable_within(
        &self,
        f: &Function,
        start: BlockId,
        horizon: usize,
    ) -> std::collections::HashSet<BlockId> {
        let mut seen = std::collections::HashSet::from([start]);
        let mut frontier = vec![start];
        for _ in 0..horizon {
            let mut next = Vec::new();
            for b in frontier {
                if !f.contains_block(b) {
                    continue;
                }
                for s in f.block(b).successors() {
                    if f.contains_block(s) && seen.insert(s) {
                        next.push(s);
                    }
                }
            }
            frontier = next;
        }
        seen
    }
}

impl Policy for BreadthFirstLookahead {
    fn name(&self) -> &'static str {
        "breadth-first+lookahead"
    }

    fn select(&mut self, f: &Function, _hb: BlockId, candidates: &[Candidate]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        // A candidate reconverges if some *other* candidate reaches it (or
        // its near successors) within the horizon.
        let regions: Vec<std::collections::HashSet<BlockId>> = candidates
            .iter()
            .map(|c| {
                if f.contains_block(c.block) {
                    self.reachable_within(f, c.block, self.horizon)
                } else {
                    std::collections::HashSet::new()
                }
            })
            .collect();
        let reconverges = |i: usize| -> bool {
            regions
                .iter()
                .enumerate()
                .any(|(j, r)| j != i && !r.is_disjoint(&regions[i]))
        };
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(i, c)| (!reconverges(*i) as u8, c.depth, c.order))
            .map(|(i, _)| i)
    }
}

/// Parameters of the VLIW path-based heuristic.
#[derive(Clone, Debug)]
pub struct VliwParams {
    /// Candidates below this reach-probability are excluded outright.
    pub min_prob: f64,
    /// Candidates below this probability are also excluded when their
    /// dependence height exceeds `height_ratio` × the mean height.
    pub cold_prob: f64,
    /// Height-exclusion ratio for cold blocks.
    pub height_ratio: f64,
}

impl Default for VliwParams {
    fn default() -> Self {
        VliwParams {
            min_prob: 0.08,
            cold_prob: 0.5,
            height_ratio: 2.0,
        }
    }
}

/// The VLIW (Mahlke-style) path-based heuristic.
#[derive(Debug, Default)]
pub struct Vliw {
    params: VliwParams,
    heights: HashMap<BlockId, u64>,
    mean_height: f64,
}

impl Vliw {
    /// A VLIW policy with custom parameters.
    pub fn with_params(params: VliwParams) -> Self {
        Vliw {
            params,
            ..Vliw::default()
        }
    }

    fn height(&self, b: BlockId) -> f64 {
        self.heights
            .get(&b)
            .copied()
            .map(|h| h as f64)
            .unwrap_or(self.mean_height)
    }
}

/// Dependence height of a block: the longest latency-weighted chain through
/// its instructions under sequential register dependences.
pub fn dependence_height(f: &Function, b: BlockId) -> u64 {
    let mut done: HashMap<chf_ir::ids::Reg, u64> = HashMap::new();
    let mut height = 0u64;
    for inst in &f.block(b).insts {
        let mut ready = 0u64;
        for o in [inst.a, inst.b].into_iter().flatten() {
            if let Operand::Reg(r) = o {
                ready = ready.max(done.get(&r).copied().unwrap_or(0));
            }
        }
        if let Some(p) = inst.pred {
            ready = ready.max(done.get(&p.reg).copied().unwrap_or(0));
        }
        let t = ready + inst.op.latency();
        if let Some(d) = inst.def() {
            done.insert(d, t);
        }
        height = height.max(t);
    }
    height
}

impl Policy for Vliw {
    fn name(&self) -> &'static str {
        "vliw"
    }

    fn prepare(&mut self, f: &Function) {
        self.heights.clear();
        for (b, _) in f.blocks() {
            self.heights.insert(b, dependence_height(f, b));
        }
        let n = self.heights.len().max(1);
        self.mean_height = self.heights.values().sum::<u64>() as f64 / n as f64;
    }

    fn select(&mut self, _f: &Function, _hb: BlockId, candidates: &[Candidate]) -> Option<usize> {
        let mean = self.mean_height.max(1.0);
        candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                if c.prob < self.params.min_prob {
                    return false;
                }
                if c.prob < self.params.cold_prob
                    && self.height(c.block) > self.params.height_ratio * mean
                {
                    return false;
                }
                true
            })
            .max_by(|(_, a), (_, b)| {
                let score = |c: &Candidate| c.prob * mean / (mean + self.height(c.block));
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.order.cmp(&a.order))
            })
            .map(|(i, _)| i)
    }
}

/// Profile-guided selection: hottest candidate first.
///
/// Orders candidates by **profiled reach probability × successor edge
/// weight** — `prob` is the driver's estimate that a dynamic execution of
/// the hyperblock reaches the candidate, and the edge weight is the
/// profiled taken count summed over the hyperblock's current exits into
/// the candidate ([`chf_ir::block::Block::edge_weight_to`]). The product
/// concentrates a constrained trial budget
/// ([`crate::convergent::FormationConfig::trial_budget`]) on the merges
/// the training run actually executed, instead of burning it in CFG
/// discovery order the way [`BreadthFirst`] does.
///
/// Determinism: ties (including the all-zero scores of an unprofiled or
/// edge-uniform CFG) break on `(depth, order)` ascending — exactly the
/// breadth-first rule — so with no differential profile signal `HotFirst`
/// selects *identically* to [`BreadthFirst`] and output stays byte-stable
/// (property-tested in `crates/core/tests/policy_props.rs`).
#[derive(Debug, Default)]
pub struct HotFirst;

impl HotFirst {
    /// The selection score: reach probability × profiled weight of the
    /// hyperblock's current edges into the candidate. A candidate whose
    /// block has been merged away (or an absent hyperblock) scores 0 and
    /// loses to any live profiled candidate.
    fn score(f: &Function, hb: BlockId, c: &Candidate) -> f64 {
        if !f.contains_block(hb) || !f.contains_block(c.block) {
            return 0.0;
        }
        c.prob * f.block(hb).edge_weight_to(c.block)
    }
}

impl Policy for HotFirst {
    fn name(&self) -> &'static str {
        "hot-first"
    }

    fn select(&mut self, f: &Function, hb: BlockId, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let (sa, sb) = (Self::score(f, hb, a), Self::score(f, hb, b));
                sb.partial_cmp(&sa)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| (a.depth, a.order).cmp(&(b.depth, b.order)))
            })
            .map(|(i, _)| i)
    }
}

/// Which policy to instantiate, for configuration tables.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// [`BreadthFirst`].
    BreadthFirst,
    /// [`BreadthFirstLookahead`] with the default horizon.
    BreadthFirstLookahead,
    /// [`DepthFirst`].
    DepthFirst,
    /// [`Vliw`] with default parameters.
    Vliw,
    /// [`HotFirst`]: profile-guided merge ordering.
    HotFirst,
}

impl PolicyKind {
    /// Create the policy object.
    pub fn instantiate(self) -> Box<dyn Policy> {
        match self {
            PolicyKind::BreadthFirst => Box::new(BreadthFirst),
            PolicyKind::BreadthFirstLookahead => Box::new(BreadthFirstLookahead::default()),
            PolicyKind::DepthFirst => Box::new(DepthFirst),
            PolicyKind::Vliw => Box::new(Vliw::default()),
            PolicyKind::HotFirst => Box::new(HotFirst),
        }
    }

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::BreadthFirst => "BF",
            PolicyKind::BreadthFirstLookahead => "BF+look",
            PolicyKind::DepthFirst => "DF",
            PolicyKind::Vliw => "VLIW",
            PolicyKind::HotFirst => "HF",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;

    fn cand(block: u32, order: usize, depth: usize, prob: f64) -> Candidate {
        Candidate {
            block: BlockId(block),
            order,
            depth,
            prob,
        }
    }

    fn dummy_fn() -> Function {
        let mut fb = FunctionBuilder::new("d", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        fb.ret(None);
        fb.build().unwrap()
    }

    #[test]
    fn breadth_first_is_fifo() {
        let f = dummy_fn();
        let cs = vec![cand(1, 2, 1, 0.9), cand(2, 0, 0, 0.1), cand(3, 1, 0, 0.8)];
        assert_eq!(BreadthFirst.select(&f, BlockId(0), &cs), Some(1));
    }

    #[test]
    fn depth_first_prefers_deep_then_hot() {
        let f = dummy_fn();
        let cs = vec![cand(1, 0, 0, 0.9), cand(2, 1, 2, 0.3), cand(3, 2, 2, 0.6)];
        assert_eq!(DepthFirst.select(&f, BlockId(0), &cs), Some(2));
    }

    #[test]
    fn vliw_excludes_cold_paths() {
        let f = dummy_fn();
        let mut v = Vliw::default();
        v.prepare(&f);
        let cs = vec![cand(1, 0, 0, 0.02), cand(2, 1, 0, 0.9)];
        assert_eq!(v.select(&f, BlockId(0), &cs), Some(1));
        let only_cold = vec![cand(1, 0, 0, 0.02)];
        assert_eq!(v.select(&f, BlockId(0), &only_cold), None);
    }

    #[test]
    fn vliw_excludes_tall_cold_blocks() {
        // Two candidate blocks: one short, one with a long dependence chain,
        // both moderately cold.
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let short = fb.create_block();
        let tall = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c, short, tall);
        fb.switch_to(short);
        fb.ret(None);
        fb.switch_to(tall);
        let mut x = fb.param(0);
        for _ in 0..30 {
            x = fb.mul(Operand::Reg(x), Operand::Imm(3));
        }
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        let mut v = Vliw::default();
        v.prepare(&f);
        let cs = vec![cand(2, 0, 0, 0.3), cand(1, 1, 0, 0.3)];
        // The tall block (id 2) is excluded; the short one picked.
        assert_eq!(v.select(&f, f.entry, &cs), Some(1));
    }

    #[test]
    fn dependence_height_tracks_chains() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let mut x = fb.param(0);
        for _ in 0..4 {
            x = fb.add(Operand::Reg(x), Operand::Imm(1));
        }
        // An independent instruction does not add height.
        let _y = fb.add(Operand::Imm(1), Operand::Imm(2));
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        assert_eq!(dependence_height(&f, f.entry), 4);
    }

    #[test]
    fn lookahead_prefers_reconverging_candidates() {
        // entry branches to a and b; both reach join j. Candidates a, b, j:
        // a and b reconverge (both reach j within horizon) and are chosen
        // before a stray cold block c that goes nowhere shared.
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let a = fb.create_block();
        let b = fb.create_block();
        let j = fb.create_block();
        let stray = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c, a, b);
        fb.switch_to(a);
        fb.jump(j);
        fb.switch_to(b);
        fb.jump(j);
        fb.switch_to(j);
        fb.ret(None);
        fb.switch_to(stray);
        fb.ret(None);
        let f = fb.build_unverified();
        let mut p = BreadthFirstLookahead::default();
        // stray discovered first (order 0) but does not reconverge.
        let cs = vec![
            cand(stray.0, 0, 0, 0.5),
            cand(a.0, 1, 0, 0.25),
            cand(b.0, 2, 0, 0.25),
        ];
        assert_eq!(p.select(&f, e, &cs), Some(1), "prefer reconverging arm");
    }

    #[test]
    fn policy_kind_instantiates() {
        for kind in [
            PolicyKind::BreadthFirst,
            PolicyKind::BreadthFirstLookahead,
            PolicyKind::DepthFirst,
            PolicyKind::Vliw,
            PolicyKind::HotFirst,
        ] {
            let p = kind.instantiate();
            assert!(!p.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    /// A diamond whose hot arm carries almost all of the profiled flow.
    fn profiled_diamond(hot_count: f64, cold_count: f64) -> (Function, BlockId, BlockId, BlockId) {
        let mut fb = FunctionBuilder::new("hot", 1);
        let e = fb.create_block();
        let hot = fb.create_block();
        let cold = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c, hot, cold);
        fb.switch_to(hot);
        fb.ret(None);
        fb.switch_to(cold);
        fb.ret(None);
        let mut f = fb.build().unwrap();
        f.block_mut(e).exits[0].count = hot_count;
        f.block_mut(e).exits[1].count = cold_count;
        (f, e, hot, cold)
    }

    #[test]
    fn hot_first_prefers_hot_edges_regardless_of_discovery_order() {
        let (f, e, hot, cold) = profiled_diamond(900.0, 100.0);
        // The cold arm was discovered first; BF would take it, HotFirst
        // must jump to the hot one.
        let cs = vec![cand(cold.0, 0, 0, 0.1), cand(hot.0, 1, 0, 0.9)];
        assert_eq!(BreadthFirst.select(&f, e, &cs), Some(0));
        assert_eq!(HotFirst.select(&f, e, &cs), Some(1));
    }

    #[test]
    fn hot_first_falls_back_to_breadth_first_without_profile_signal() {
        // Zero edge weights (unprofiled CFG): every score is 0, so the
        // (depth, order) tie-break must reproduce breadth-first exactly.
        let (f, e, hot, cold) = profiled_diamond(0.0, 0.0);
        let cs = vec![
            cand(hot.0, 2, 1, 0.9),
            cand(cold.0, 0, 0, 0.1),
            cand(hot.0, 1, 0, 0.8),
        ];
        assert_eq!(HotFirst.select(&f, e, &cs), BreadthFirst.select(&f, e, &cs));
    }

    #[test]
    fn hot_first_scores_dead_candidates_zero() {
        let (f, e, hot, _) = profiled_diamond(900.0, 100.0);
        // A candidate whose block no longer exists must lose to a live one
        // even with a huge reach probability.
        let cs = vec![cand(4242, 0, 0, 1.0), cand(hot.0, 1, 0, 0.2)];
        assert_eq!(HotFirst.select(&f, e, &cs), Some(1));
    }
}
