//! Deterministic, seeded fault injection for the formation pipeline.
//!
//! The crash-safety claim of this crate — a mid-trial verifier violation is
//! *contained* (rolled back + skipped), never a process abort — is only as
//! good as its test pressure. This module supplies that pressure: a
//! registry of fault kinds covering the IR corruptions CFG surgery is prone
//! to (dangling exits, predicated default exits, out-of-range registers)
//! and the profile corruptions adversarial training data can produce
//! (zeroed or overflowed trip counts, truncated edge profiles), an
//! [`inject`] entry point that applies one deterministically, and a
//! [`campaign`] driver that generates random programs, injects faults, runs
//! full formation under the differential oracle, and classifies every fault
//! as **detected** (verifier refused the input), **rolled back** (the
//! mid-trial net fired), or **survived** (formation produced a correct
//! function anyway). Any process abort or undetected miscompile fails the
//! campaign.
//!
//! Everything is seeded: `CHF_FAULT_SEED` (see [`seed_from_env`]) pins the
//! whole campaign, so a failure reported by CI is replayable locally with
//! one environment variable.

use crate::convergent::{form_hyperblocks_with_profile, FormationConfig, SeedOrder};
use crate::oracle::{self, OracleConfig};
use crate::policy::{BreadthFirst, HotFirst, Policy};
use chf_ir::block::{Exit, ExitTarget};
use chf_ir::function::Function;
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::Pred;
use chf_ir::profile::ProfileData;
use chf_ir::testgen::{generate, GenConfig};
use chf_sim::functional::profile_run;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// SplitMix64 — the same tiny, high-quality generator testgen uses. Kept
/// private to this crate so fault sequences are stable regardless of what
/// the rest of the workspace does with its RNGs.
#[derive(Clone, Debug)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator whose entire output is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`n > 0`).
    pub fn next_range(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// When and from what seed the mid-trial injection point in
/// [`crate::convergent`] fires: roughly one fault per `period` merge
/// trials, drawn from the `seed`ed stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Average trials between injected faults (`0` is treated as `1`).
    pub period: u32,
}

/// The registry of injectable faults.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An exit is retargeted at a block id that was never created —
    /// detectable by `verify` as a dangling edge.
    DanglingExit,
    /// The final (default) exit of a block gains a predicate, so the exit
    /// set is no longer total — detectable as `NoDefaultExit`.
    PredicatedDefault,
    /// An exit predicate references a register beyond the allocated
    /// register space — detectable as `RegisterOutOfRange`.
    RegisterOutOfRange,
    /// A loop's trip-count histogram is zeroed out; formation must survive
    /// a profile that claims the loop never ran.
    ZeroTripCount,
    /// A trip-count histogram entry is pushed to `u64::MAX`; the
    /// histogram's saturating arithmetic must absorb it.
    OverflowedTripCount,
    /// Half the edge-profile entries vanish, as from a truncated profile
    /// file; formation sees zero counts on real edges and must cope.
    TruncatedEdgeProfile,
    /// The edge and block counts are rotated among entries and scaled to
    /// extremes — exactly the signals the profile-guided ordering (the
    /// hot-first policy and hot seed order) consumes. The campaign runs
    /// this kind under the hot-first policy: a scrambled profile may
    /// mis-prioritize formation but must never miscompile.
    ScrambledEdgeProfile,
    /// No up-front corruption: the trial-window injection point inside
    /// `merge_blocks` corrupts the merged block *mid-formation*, which the
    /// verify-and-rollback net must contain.
    MidTrial,
    /// A recorded shard checkpoint of the sharded whole-program simulator
    /// is corrupted (a register slot, a memory cell, or a predictor entry)
    /// between planning and replay. The stitch validators must detect the
    /// divergence and degrade to sequential re-simulation — the returned
    /// result must still equal the sequential engine's exactly.
    CorruptedCheckpoint,
}

impl FaultKind {
    /// Position of this kind in [`FaultKind::ALL`], for per-kind tallies.
    pub fn index(self) -> usize {
        FaultKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is in ALL")
    }

    /// Every member of the registry, for seeded selection and reporting.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::DanglingExit,
        FaultKind::PredicatedDefault,
        FaultKind::RegisterOutOfRange,
        FaultKind::ZeroTripCount,
        FaultKind::OverflowedTripCount,
        FaultKind::TruncatedEdgeProfile,
        FaultKind::ScrambledEdgeProfile,
        FaultKind::MidTrial,
        FaultKind::CorruptedCheckpoint,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::DanglingExit => "dangling-exit",
            FaultKind::PredicatedDefault => "predicated-default",
            FaultKind::RegisterOutOfRange => "register-out-of-range",
            FaultKind::ZeroTripCount => "zero-trip-count",
            FaultKind::OverflowedTripCount => "overflowed-trip-count",
            FaultKind::TruncatedEdgeProfile => "truncated-edge-profile",
            FaultKind::ScrambledEdgeProfile => "scrambled-edge-profile",
            FaultKind::MidTrial => "mid-trial",
            FaultKind::CorruptedCheckpoint => "corrupted-checkpoint",
        };
        f.write_str(s)
    }
}

/// A block id guaranteed not to exist in `f`.
fn dangling_target(f: &Function) -> BlockId {
    let max = f.block_ids().map(|b| b.0).max().unwrap_or(0);
    BlockId(max + 1000)
}

/// Pick a live block of `f` deterministically.
fn pick_block(f: &Function, rng: &mut ChaosRng) -> BlockId {
    let ids: Vec<BlockId> = f.block_ids().collect();
    ids[rng.next_range(ids.len() as u64) as usize]
}

/// Apply `kind` to the function/profile pair. [`FaultKind::MidTrial`] is a
/// no-op here — it is armed through [`FormationConfig::chaos`] instead.
pub fn inject(f: &mut Function, profile: &mut ProfileData, kind: FaultKind, rng: &mut ChaosRng) {
    match kind {
        FaultKind::DanglingExit => {
            let target = dangling_target(f);
            let b = pick_block(f, rng);
            let blk = f.block_mut(b);
            let i = rng.next_range(blk.exits.len() as u64) as usize;
            blk.exits[i].target = ExitTarget::Block(target);
        }
        FaultKind::PredicatedDefault => {
            let b = pick_block(f, rng);
            let blk = f.block_mut(b);
            if let Some(last) = blk.exits.last_mut() {
                last.pred = Some(Pred {
                    reg: Reg(0),
                    if_true: true,
                });
            }
        }
        FaultKind::RegisterOutOfRange => {
            let bogus = Reg(f.reg_count() + 100);
            let b = pick_block(f, rng);
            let blk = f.block_mut(b);
            blk.exits.insert(
                0,
                Exit {
                    pred: Some(Pred {
                        reg: bogus,
                        if_true: true,
                    }),
                    target: ExitTarget::Return(None),
                    count: 0.0,
                },
            );
        }
        FaultKind::ZeroTripCount => {
            for h in profile.trip_histograms.values_mut() {
                for n in h.counts.values_mut() {
                    *n = 0;
                }
            }
        }
        FaultKind::OverflowedTripCount => {
            let b = pick_block(f, rng);
            let h = profile.trip_histograms.entry(b).or_default();
            h.counts.insert(u64::MAX, u64::MAX);
            h.counts.insert(u64::MAX - 1, u64::MAX);
        }
        FaultKind::TruncatedEdgeProfile => {
            // Drop roughly half the edge counts, keyed on the seeded stream
            // so the truncation pattern is reproducible.
            let keep = rng.next_u64();
            let mut i = 0u64;
            profile.exit_counts.retain(|_, _| {
                i = i.wrapping_add(1);
                (keep >> (i % 64)) & 1 == 0
            });
        }
        FaultKind::ScrambledEdgeProfile => {
            // Rotate the edge counts among entries (sorted keys, so the
            // permutation is seed-stable) and scale each to an extreme,
            // then push block counts to 0 or `u64::MAX`. The IR stays
            // valid; only the ordering signals are garbage.
            let mut keys: Vec<(BlockId, usize)> = profile.exit_counts.keys().copied().collect();
            keys.sort_unstable();
            if !keys.is_empty() {
                let mut vals: Vec<u64> = keys.iter().map(|k| profile.exit_counts[k]).collect();
                let rot = rng.next_range(vals.len() as u64) as usize;
                vals.rotate_left(rot);
                for (k, v) in keys.iter().zip(vals) {
                    let scale = 1 + rng.next_range(1_000_000);
                    profile.exit_counts.insert(*k, v.saturating_mul(scale));
                }
            }
            for n in profile.block_counts.values_mut() {
                *n = if rng.next_range(2) == 0 { 0 } else { u64::MAX };
            }
        }
        FaultKind::MidTrial => {}
        // Armed downstream of planning, not on the IR; see
        // `checkpoint_fault_outcome`.
        FaultKind::CorruptedCheckpoint => {}
    }
}

/// Exercise the sharded simulator's checkpoint-corruption net on `f`: plan
/// with deliberately tiny shards, corrupt one recorded checkpoint chosen
/// from the seeded stream, replay and stitch, and compare against the
/// sequential engine. Divergence in the *returned result* is a miscompile
/// (must never happen); a detected corruption shows up as the stitch
/// degrading to sequential re-simulation. Public so the service-level
/// campaign (`chf-service`) can run the same exercise against compiled
/// responses.
pub fn checkpoint_fault_outcome(f: &Function, args: &[i64], rng: &mut ChaosRng) -> FaultOutcome {
    use chf_sim::timing::{simulate_timing_lowered, TimingConfig};
    use chf_sim::{
        corrupt_checkpoint, plan_shards, simulate_shard, stitch, CheckpointFault, LoweredProgram,
        ShardConfig,
    };
    let p = LoweredProgram::lower(f);
    let cfg = TimingConfig {
        max_blocks: 500_000,
        ..TimingConfig::trips()
    };
    // Tiny shards so even short generated programs split and every
    // validator (architectural probe, boundary digests, counter expects)
    // gets pressure.
    let scfg = ShardConfig {
        shard_blocks: 8,
        warmup_blocks: 3,
    };
    let seq = match simulate_timing_lowered(&p, args, &[], &cfg) {
        Ok(r) => r,
        // The timing model rejects this program; there is nothing to
        // shard or corrupt.
        Err(_) => return FaultOutcome::Survived,
    };
    let mut plan = match plan_shards(&p, args, &[], &cfg, &scfg) {
        Ok(pl) => pl,
        Err(_) => return FaultOutcome::Survived,
    };
    if plan.n_shards() < 2 {
        return FaultOutcome::Survived;
    }
    let shard_idx = rng.next_range(plan.n_shards() as u64) as usize;
    let fault = match rng.next_range(3) {
        0 => CheckpointFault::RegisterSlot {
            reg: rng.next_u64(),
            xor: (rng.next_u64() | 1) as i64,
        },
        1 => CheckpointFault::MemoryCell {
            idx: rng.next_u64(),
            xor: (rng.next_u64() | 1) as i64,
        },
        _ => CheckpointFault::PredictorEntry {
            seed: rng.next_u64(),
        },
    };
    if !corrupt_checkpoint(&mut plan, shard_idx, &fault) {
        // Nothing corruptible at that site (empty memory image, untrained
        // predictor): the injection was a no-op.
        return FaultOutcome::Survived;
    }
    let runs = (0..plan.n_shards())
        .map(|k| simulate_shard(&p, &cfg, &plan, k))
        .collect();
    let Ok(sh) = stitch(&p, args, &[], &cfg, &plan, runs) else {
        // The fallback re-simulation errored even though the sequential
        // run succeeded — a divergence, i.e. a miscompile.
        return FaultOutcome::Miscompiled;
    };
    let equal = sh.result.cycles == seq.cycles
        && sh.result.mispredictions == seq.mispredictions
        && sh.result.insts_executed == seq.insts_executed
        && sh.result.ret == seq.ret
        && sh.result.digest() == seq.digest();
    match (equal, sh.fallback.is_some()) {
        (false, _) => FaultOutcome::Miscompiled,
        (true, true) => FaultOutcome::RolledBack,
        // The corrupted state was dead (overwritten before any read):
        // replay legitimately reproduced the plan.
        (true, false) => FaultOutcome::Survived,
    }
}

/// Corrupt the merged block `hb` *inside* a merge-trial window — the
/// callback armed by [`FormationConfig::chaos`]. Every corruption mutates
/// only `hb` (which the trial snapshot covers, so rollback stays exact) and
/// is guaranteed detectable by the plain structural verifier.
pub fn corrupt_trial_block(f: &mut Function, hb: BlockId, rng: &mut ChaosRng) {
    let choice = rng.next_range(4);
    let target = dangling_target(f);
    let blk = f.block_mut(hb);
    match choice {
        0 => {
            // Dangling edge.
            let i = rng.next_range(blk.exits.len().max(1) as u64) as usize;
            if let Some(e) = blk.exits.get_mut(i) {
                e.target = ExitTarget::Block(target);
            }
        }
        1 => {
            // Non-total exit set.
            if let Some(last) = blk.exits.last_mut() {
                last.pred = Some(Pred {
                    reg: Reg(0),
                    if_true: true,
                });
            }
        }
        2 => {
            // No exits at all.
            blk.exits.clear();
        }
        _ => {
            // Out-of-range predicate register.
            let bogus = Reg(u32::MAX - 7);
            blk.exits.insert(
                0,
                Exit {
                    pred: Some(Pred {
                        reg: bogus,
                        if_true: true,
                    }),
                    target: ExitTarget::Return(None),
                    count: 0.0,
                },
            );
        }
    }
}

/// The campaign seed from `CHF_FAULT_SEED`, if set and parseable.
pub fn seed_from_env() -> Option<u64> {
    std::env::var("CHF_FAULT_SEED").ok()?.trim().parse().ok()
}

/// How one injected fault was handled.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The verifier refused the corrupted input up front.
    Detected,
    /// Formation ran; at least one trial was contained by the
    /// verify-and-rollback net (or the oracle undid a commit).
    RolledBack,
    /// Formation ran to completion and the output matched the input
    /// behaviourally.
    Survived,
    /// Formation completed but the output diverges — an undetected
    /// miscompile. Campaign failure.
    Miscompiled,
}

/// Outcome counts for one [`FaultKind`] within a campaign.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KindTally {
    /// Faults of this kind injected.
    pub injected: usize,
    /// Refused by the verifier up front.
    pub detected: usize,
    /// Contained mid-formation by rollback.
    pub rolled_back: usize,
    /// Output correct despite the fault.
    pub survived: usize,
    /// Panics that escaped to the isolation boundary. Must be 0.
    pub aborts: usize,
    /// Undetected behaviour changes. Must be 0.
    pub miscompiles: usize,
}

/// Aggregate result of a [`campaign`] run.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Faults injected.
    pub total: usize,
    /// Faults refused by the verifier before formation started.
    pub detected: usize,
    /// Faults contained mid-formation by rollback.
    pub rolled_back: usize,
    /// Faults formation simply survived (output still correct).
    pub survived: usize,
    /// Process-level panics caught by the per-fault isolation. Must be 0.
    pub aborts: usize,
    /// Undetected behaviour changes. Must be 0.
    pub miscompiles: usize,
    /// Per-kind breakdown, indexed like [`FaultKind::ALL`]. An abort that
    /// escaped before its fault kind was drawn is counted only in
    /// [`CampaignReport::aborts`].
    pub by_kind: Vec<KindTally>,
    /// Reproducers written by the oracle's reducer.
    pub repros: Vec<PathBuf>,
}

impl CampaignReport {
    /// Every nonzero `(fault kind, outcome label, count)` classification
    /// cell, in registry order — the export the trace-corpus coverage map
    /// consumes. Labels are stable (`detected`, `rolled-back`, `survived`,
    /// `abort`, `miscompile`); a `(kind, label)` pair is one coverage cell,
    /// the count is informational.
    pub fn classification_cells(&self) -> Vec<(FaultKind, &'static str, usize)> {
        let mut cells = Vec::new();
        for (kind, t) in FaultKind::ALL.iter().zip(&self.by_kind) {
            for (label, n) in [
                ("detected", t.detected),
                ("rolled-back", t.rolled_back),
                ("survived", t.survived),
                ("abort", t.aborts),
                ("miscompile", t.miscompiles),
            ] {
                if n > 0 {
                    cells.push((*kind, label, n));
                }
            }
        }
        cells
    }

    /// The campaign's pass criterion: no aborts, no undetected miscompiles,
    /// and every fault accounted for.
    pub fn ok(&self) -> bool {
        self.aborts == 0
            && self.miscompiles == 0
            && self.detected + self.rolled_back + self.survived == self.total
    }

    /// One-line machine-readable summary, for CI consumption (stable keys,
    /// no trailing newline). Kinds that were never injected are omitted.
    pub fn json(&self) -> String {
        use std::fmt::Write;
        let mut kinds = String::new();
        for (kind, t) in FaultKind::ALL.iter().zip(&self.by_kind) {
            if t.injected == 0 {
                continue;
            }
            if !kinds.is_empty() {
                kinds.push(',');
            }
            let _ = write!(
                kinds,
                "\"{kind}\":{{\"injected\":{},\"detected\":{},\"rolled_back\":{},\
                 \"survived\":{},\"aborts\":{},\"miscompiles\":{}}}",
                t.injected, t.detected, t.rolled_back, t.survived, t.aborts, t.miscompiles
            );
        }
        format!(
            "{{\"campaign\":\"formation\",\"faults\":{},\"detected\":{},\
             \"rolled_back\":{},\"survived\":{},\"contained\":{},\"aborts\":{},\
             \"miscompiles\":{},\"repros\":{},\"ok\":{},\"by_kind\":{{{kinds}}}}}",
            self.total,
            self.detected,
            self.rolled_back,
            self.survived,
            self.detected + self.rolled_back + self.survived,
            self.aborts,
            self.miscompiles,
            self.repros.len(),
            self.ok()
        )
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults: {} detected, {} rolled back, {} survived, {} aborts, {} miscompiles",
            self.total,
            self.detected,
            self.rolled_back,
            self.survived,
            self.aborts,
            self.miscompiles
        )
    }
}

/// Run one seeded fault end to end; `None` means the fault escaped as a
/// panic (counted as an abort by the caller). The drawn fault kind is
/// published through `kind_out` as soon as it is known, so even an abort
/// can be attributed in the per-kind tallies.
fn run_one_fault(
    fault_seed: u64,
    repro_dir: Option<&PathBuf>,
    kind_out: &std::cell::Cell<Option<FaultKind>>,
) -> Option<(FaultOutcome, Vec<PathBuf>)> {
    let dir = repro_dir.cloned();
    catch_unwind(AssertUnwindSafe(move || {
        let mut rng = ChaosRng::new(fault_seed);
        let prog_seed = rng.next_u64();
        let mut f = generate(prog_seed, &GenConfig::default());
        let train: Vec<i64> = (0..f.params)
            .map(|_| rng.next_range(24) as i64 - 4)
            .collect();
        let mut profile = profile_run(&f, &train, &[]).unwrap_or_default();

        let kind = FaultKind::ALL[rng.next_range(FaultKind::ALL.len() as u64) as usize];
        kind_out.set(Some(kind));
        if kind == FaultKind::CorruptedCheckpoint {
            // This kind pressures the simulator subsystem, not formation:
            // corrupt a recorded checkpoint and demand the stitch detects
            // it and degrades without changing the result.
            return (checkpoint_fault_outcome(&f, &train, &mut rng), Vec::new());
        }
        let oracle_cfg = OracleConfig {
            seed: fault_seed,
            inputs: 3,
            max_blocks: 500_000,
            repro_dir: dir,
        };
        let mut config = FormationConfig {
            verify_trials: true,
            oracle: Some(oracle_cfg.clone()),
            ..FormationConfig::default()
        };
        if kind == FaultKind::MidTrial {
            config.chaos = Some(ChaosSpec {
                seed: fault_seed,
                period: 2,
            });
        } else {
            inject(&mut f, &mut profile, kind, &mut rng);
        }
        // Scrambled ordering inputs are only interesting to the policy
        // that consumes them: run that kind under the profile-guided
        // hot-first policy and seed order, breadth-first otherwise.
        let mut policy: Box<dyn Policy> = if kind == FaultKind::ScrambledEdgeProfile {
            config.seed_order = SeedOrder::HotFirst;
            Box::new(HotFirst)
        } else {
            Box::new(BreadthFirst)
        };

        // Gate 1: the full verifier. IR corruptions must be refused here —
        // a compiler front end is entitled to reject garbage outright.
        if chf_ir::verify::verify_full(&f).is_err() {
            return (FaultOutcome::Detected, Vec::new());
        }

        // Gate 2: formation under the safety net.
        profile.apply(&mut f);
        let orig = f.clone();
        let stats = form_hyperblocks_with_profile(&mut f, policy.as_mut(), &config, Some(&profile));

        // Gate 3: whole-pipeline differential check.
        let repros: Vec<PathBuf> = Vec::new();
        if oracle::first_mismatch(&orig, &f, &oracle_cfg).is_some() {
            return (FaultOutcome::Miscompiled, repros);
        }
        if stats.skipped > 0 {
            (FaultOutcome::RolledBack, repros)
        } else {
            (FaultOutcome::Survived, repros)
        }
    }))
    .ok()
}

/// Run a seeded campaign of `faults` injections. Each fault is isolated in
/// its own `catch_unwind` scope so a single escape cannot kill the
/// campaign; escapes are tallied as aborts (which fail [`CampaignReport::ok`]).
pub fn campaign(seed: u64, faults: usize, repro_dir: Option<PathBuf>) -> CampaignReport {
    let mut master = ChaosRng::new(seed);
    let mut report = CampaignReport {
        total: faults,
        by_kind: vec![KindTally::default(); FaultKind::ALL.len()],
        ..CampaignReport::default()
    };
    for _ in 0..faults {
        let fault_seed = master.next_u64();
        let kind_cell = std::cell::Cell::new(None);
        let result = run_one_fault(fault_seed, repro_dir.as_ref(), &kind_cell);
        let tally = kind_cell.get().map(|k| k.index());
        if let Some(i) = tally {
            report.by_kind[i].injected += 1;
        }
        match result {
            Some((outcome, mut repros)) => {
                match outcome {
                    FaultOutcome::Detected => report.detected += 1,
                    FaultOutcome::RolledBack => report.rolled_back += 1,
                    FaultOutcome::Survived => report.survived += 1,
                    FaultOutcome::Miscompiled => report.miscompiles += 1,
                }
                if let Some(i) = tally {
                    let t = &mut report.by_kind[i];
                    match outcome {
                        FaultOutcome::Detected => t.detected += 1,
                        FaultOutcome::RolledBack => t.rolled_back += 1,
                        FaultOutcome::Survived => t.survived += 1,
                        FaultOutcome::Miscompiled => t.miscompiles += 1,
                    }
                }
                report.repros.append(&mut repros);
            }
            None => {
                report.aborts += 1;
                if let Some(i) = tally {
                    report.by_kind[i].aborts += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ir_faults_are_verifier_detectable() {
        for kind in [
            FaultKind::DanglingExit,
            FaultKind::PredicatedDefault,
            FaultKind::RegisterOutOfRange,
        ] {
            for seed in 0..8 {
                let mut rng = ChaosRng::new(seed);
                let mut f = generate(seed, &GenConfig::default());
                let mut p = ProfileData::default();
                inject(&mut f, &mut p, kind, &mut rng);
                assert!(
                    chf_ir::verify::verify(&f).is_err(),
                    "{kind} on seed {seed} must be detected"
                );
            }
        }
    }

    #[test]
    fn profile_faults_leave_ir_valid() {
        for kind in [
            FaultKind::ZeroTripCount,
            FaultKind::OverflowedTripCount,
            FaultKind::TruncatedEdgeProfile,
            FaultKind::ScrambledEdgeProfile,
        ] {
            let mut rng = ChaosRng::new(9);
            let mut f = generate(9, &GenConfig::default());
            let mut p = profile_run(&f, &[3, 7], &[]).unwrap();
            inject(&mut f, &mut p, kind, &mut rng);
            chf_ir::verify::verify_full(&f).unwrap();
        }
    }

    #[test]
    fn trial_corruptions_are_always_detected() {
        for seed in 0..32 {
            let mut rng = ChaosRng::new(seed);
            let mut f = generate(seed % 5, &GenConfig::default());
            let hb = f.entry;
            corrupt_trial_block(&mut f, hb, &mut rng);
            assert!(
                chf_ir::verify::verify(&f).is_err(),
                "trial corruption under seed {seed} escaped the verifier:\n{f}"
            );
        }
    }

    #[test]
    fn corrupted_checkpoints_are_contained() {
        // Drive the checkpoint-fault exercise directly across many seeds:
        // a live corruption must be detected by the stitch (rolled back to
        // sequential re-simulation), a dead one may survive, and the
        // returned result must never diverge — Miscompiled is fatal.
        let mut rolled_back = 0;
        for seed in 0..48u64 {
            let mut rng = ChaosRng::new(seed);
            let f = generate(seed, &GenConfig::default());
            let train: Vec<i64> = (0..f.params)
                .map(|_| rng.next_range(24) as i64 - 4)
                .collect();
            let outcome = checkpoint_fault_outcome(&f, &train, &mut rng);
            assert_ne!(
                outcome,
                FaultOutcome::Miscompiled,
                "seed {seed}: sharded result diverged from sequential under corruption"
            );
            if outcome == FaultOutcome::RolledBack {
                rolled_back += 1;
            }
        }
        assert!(
            rolled_back > 0,
            "no corruption was ever live — the exercise is vacuous"
        );
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let a = campaign(0xC4A5, 40, None);
        assert!(a.ok(), "campaign failed: {a}");
        let b = campaign(0xC4A5, 40, None);
        assert_eq!(
            (a.detected, a.rolled_back, a.survived),
            (b.detected, b.rolled_back, b.survived),
            "campaign must be seed-deterministic"
        );
        assert_eq!(a.by_kind, b.by_kind, "per-kind tallies must be stable");
    }

    #[test]
    fn per_kind_tallies_account_for_every_fault() {
        let r = campaign(7, 60, None);
        let attributed: usize = r.by_kind.iter().map(|t| t.injected).sum();
        // Every fault that got far enough to draw a kind is attributed;
        // only a pre-draw abort could fall outside (and this campaign has
        // no aborts at all).
        assert_eq!(attributed + r.aborts, r.total);
        let outcomes: usize = r
            .by_kind
            .iter()
            .map(|t| t.detected + t.rolled_back + t.survived + t.aborts + t.miscompiles)
            .sum();
        assert_eq!(outcomes, attributed);
        let cells = r.classification_cells();
        assert!(!cells.is_empty());
        let cell_total: usize = cells.iter().map(|(_, _, n)| n).sum();
        assert_eq!(cell_total, outcomes, "cells must cover every outcome");
        let j = r.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ok\":true"), "{j}");
        assert!(j.contains("\"by_kind\""), "{j}");
        assert!(!j.contains('\n'));
    }

    #[test]
    fn seed_env_parses() {
        // Only exercises the parser, not the environment (std::env is
        // process-global; tests must not set vars).
        assert_eq!("123".trim().parse::<u64>().ok(), Some(123));
    }
}
