//! Differential oracle for committed merges.
//!
//! The verifier ([`chf_ir::verify`]) catches *structural* damage; it cannot
//! catch a merge that produces well-formed IR computing the wrong answer
//! (a mis-predicated speculated instruction, a dropped side effect). The
//! oracle closes that gap: after each committed merge, the transformed
//! function is re-executed on a deterministic set of seeded inputs against
//! its pre-merge self. On any divergence the merge is undone from the
//! pre-merge clone — formation degrades gracefully instead of emitting a
//! miscompile — and a greedy reducer shrinks the offending function to a
//! minimal `.til` reproducer under `results/repros/`.
//!
//! The oracle re-runs the functional simulator once per committed merge, so
//! it is a hardening/debugging tool (chaos campaigns, bug triage), not a
//! production default: [`crate::FormationConfig::oracle`] is `None` unless
//! explicitly enabled.
//!
//! # Repro workflow
//!
//! A repro file is a self-describing textual IR function: `#`-comment
//! headers record the failing merge (`hb <- s`), the diverging arguments
//! and the oracle seed, followed by the reduced pre-merge function, which
//! [`chf_ir::parse::parse_function`] reads back directly (the parser skips
//! comments). Re-running the named merge on the parsed function and
//! comparing executions reproduces the divergence.

use crate::chaos::ChaosRng;
use crate::convergent::{merge_blocks, FormationConfig};
use crate::error::ChfError;
use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::BlockId;
use chf_sim::functional::{run, run_lowered, RunConfig};
use chf_sim::LoweredProgram;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Configuration of the differential oracle.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleConfig {
    /// Seed for the deterministic input generator.
    pub seed: u64,
    /// Number of seeded inputs to replay per committed merge.
    pub inputs: usize,
    /// Fuel per replay (dynamic block executions) — bounds the cost of
    /// oracling a function whose merge introduced an infinite loop.
    pub max_blocks: u64,
    /// Where to write minimized `.til` reproducers; `None` disables repro
    /// writing (the mismatch is still reported and rolled back).
    pub repro_dir: Option<PathBuf>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            seed: 0x0C0FFEE,
            inputs: 4,
            max_blocks: 500_000,
            repro_dir: None,
        }
    }
}

impl OracleConfig {
    /// The simulator configuration used for oracle replays.
    fn run_config(&self) -> RunConfig {
        RunConfig {
            max_blocks: self.max_blocks,
            check_uninit: false,
            collect_trip_counts: false,
        }
    }

    /// The deterministic argument vector for replay number `i` of a
    /// function with `params` parameters. Small signed values (−4..20):
    /// enough to drive testgen loops both ways without overflowing fuel.
    fn args_for(&self, rng: &mut ChaosRng, params: u32) -> Vec<i64> {
        (0..params).map(|_| rng.next_range(24) as i64 - 4).collect()
    }
}

/// Replay `orig` and `new` on the oracle's seeded inputs; return the first
/// argument vector on which they disagree, or `None` if all replays match.
///
/// Inputs on which *`orig` itself* fails to execute (out of fuel, malformed)
/// are skipped — the oracle judges the transformation, not the program.
/// `new` failing where `orig` succeeded *is* a divergence.
///
/// Each function is lowered **once** and the pre-decoded handle replayed
/// across all seeded inputs; decoding is the fixed cost, replay the
/// marginal one (this is the hot path of chaos campaigns, which oracle
/// every committed merge).
pub fn first_mismatch(orig: &Function, new: &Function, cfg: &OracleConfig) -> Option<Vec<i64>> {
    let run_cfg = cfg.run_config();
    let lowered_orig = LoweredProgram::lower(orig);
    let lowered_new = LoweredProgram::lower(new);
    let mut rng = ChaosRng::new(cfg.seed);
    for _ in 0..cfg.inputs {
        let args = cfg.args_for(&mut rng, orig.params);
        let Ok(a) = run_lowered(&lowered_orig, &args, &[], &run_cfg) else {
            continue;
        };
        match run_lowered(&lowered_new, &args, &[], &run_cfg) {
            Ok(b) if b.digest() == a.digest() => {}
            _ => return Some(args),
        }
    }
    None
}

/// Post-commit hook called from the formation loop after a merge of `s`
/// into `hb` committed: replay the function against its pre-merge self.
///
/// On divergence: `f` is restored from `orig` (undoing the commit), a
/// minimized reproducer is written if configured, and the mismatch is
/// returned for the caller to surface as a skipped trial.
///
/// # Errors
/// [`ChfError::OracleMismatch`] when a seeded input diverges.
pub fn post_commit_check(
    f: &mut Function,
    hb: BlockId,
    s: BlockId,
    config: &FormationConfig,
    orig: &Function,
) -> Result<(), ChfError> {
    let cfg = config.oracle.as_ref().expect("caller enables the oracle");
    let Some(args) = first_mismatch(orig, f, cfg) else {
        return Ok(());
    };
    // Undo the commit: the pre-merge clone is the authoritative state.
    *f = orig.clone();
    let repro = cfg.repro_dir.as_ref().and_then(|dir| {
        let reduced = reduce_merge_mismatch(orig.clone(), hb, s, config, &args, cfg);
        write_repro(dir, &reduced, hb, s, &args, cfg.seed)
    });
    Err(ChfError::OracleMismatch {
        function: f.name.clone(),
        args,
        repro,
    })
}

/// Whether re-attempting the merge `hb <- s` on `h` still exhibits a
/// divergence on `args` (or panics — a crash reproducer is equally useful).
///
/// The merge re-runs under a *stripped* configuration (no oracle, no chaos,
/// no trial verification) so reduction cannot recurse into the oracle or
/// re-inject faults.
fn reproduces(
    h: &Function,
    hb: BlockId,
    s: BlockId,
    plain: &FormationConfig,
    args: &[i64],
    run_cfg: &RunConfig,
) -> bool {
    let pre = h.clone();
    let merged = catch_unwind(AssertUnwindSafe(move || {
        let mut m = pre;
        merge_blocks(&mut m, hb, s, plain);
        m
    }));
    let Ok(merged) = merged else {
        return true; // the reduced case crashes the merge: keep it
    };
    if merged.to_string() == h.to_string() {
        return false; // merge refused: nothing was transformed
    }
    match (run(h, args, &[], run_cfg), run(&merged, args, &[], run_cfg)) {
        (Ok(a), Ok(b)) => a.digest() != b.digest(),
        (Ok(_), Err(_)) => true,
        (Err(_), _) => false, // baseline no longer executes: over-reduced
    }
}

/// Remove block `b` from `f`, dropping predicated exits that target it and
/// turning unpredicated ones into bare returns, so the CFG stays total.
fn detach_block(f: &mut Function, b: BlockId) {
    let ids: Vec<BlockId> = f.block_ids().collect();
    for id in ids {
        if id == b {
            continue;
        }
        let blk = f.block_mut(id);
        blk.exits
            .retain(|e| e.pred.is_none() || e.target != ExitTarget::Block(b));
        for e in &mut blk.exits {
            if e.target == ExitTarget::Block(b) {
                e.target = ExitTarget::Return(None);
            }
        }
    }
    f.remove_block(b);
}

/// Greedy property-preserving reducer: repeatedly try to (1) delete whole
/// blocks, (2) delete instructions, (3) delete predicated exits — keeping
/// each deletion only while `keeps` still accepts the candidate. Runs to a
/// fixpoint (bounded sweeps). Blocks in `pinned` are never deleted (the
/// entry is always pinned).
///
/// The oracle drives this with "still verifies and the failing merge still
/// diverges"; the trace-corpus fuzzer reuses it with "still lands in the
/// same coverage cell" to shrink admitted entries.
pub fn greedy_reduce(
    mut h: Function,
    pinned: &[BlockId],
    keeps: &dyn Fn(&Function) -> bool,
) -> Function {
    const MAX_SWEEPS: usize = 8;
    for _ in 0..MAX_SWEEPS {
        let mut changed = false;
        // Pass 1: whole blocks (entry and pinned blocks are load-bearing).
        for b in h.block_ids().collect::<Vec<_>>() {
            if b == h.entry || pinned.contains(&b) {
                continue;
            }
            let mut cand = h.clone();
            detach_block(&mut cand, b);
            if keeps(&cand) {
                h = cand;
                changed = true;
            }
        }
        // Pass 2: individual instructions.
        for b in h.block_ids().collect::<Vec<_>>() {
            let mut i = 0;
            while h.contains_block(b) && i < h.block(b).insts.len() {
                let mut cand = h.clone();
                cand.block_mut(b).insts.remove(i);
                if keeps(&cand) {
                    h = cand;
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        // Pass 3: predicated exits (the final unpredicated default stays).
        for b in h.block_ids().collect::<Vec<_>>() {
            let mut i = 0;
            while h.contains_block(b) && i < h.block(b).exits.len() {
                if h.block(b).exits[i].pred.is_none() {
                    i += 1;
                    continue;
                }
                let mut cand = h.clone();
                cand.block_mut(b).exits.remove(i);
                if keeps(&cand) {
                    h = cand;
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        if !changed {
            break;
        }
    }
    h
}

/// Divergence-preserving reduction of an oracle mismatch: [`greedy_reduce`]
/// with "the function still verifies and the merge `hb <- s` still
/// diverges on `args`" as the keep predicate, and the merge pair pinned.
fn reduce_merge_mismatch(
    h: Function,
    hb: BlockId,
    s: BlockId,
    config: &FormationConfig,
    args: &[i64],
    cfg: &OracleConfig,
) -> Function {
    let plain = FormationConfig {
        oracle: None,
        chaos: None,
        verify_trials: false,
        ..config.clone()
    };
    let run_cfg = cfg.run_config();
    let keeps = move |cand: &Function| {
        chf_ir::verify::verify(cand).is_ok() && reproduces(cand, hb, s, &plain, args, &run_cfg)
    };
    greedy_reduce(h, &[hb, s], &keeps)
}

/// Write `contents` to `dir/stem.til` without ever clobbering a different
/// repro: an existing file with identical contents is reused (the write is
/// a no-op dedup), while a *different* existing file — a stem collision —
/// pushes the new repro to `stem-2.til`, `stem-3.til`, … instead of
/// silently overwriting it. Returns `None` on I/O failure.
pub fn write_unique_til(dir: &Path, stem: &str, contents: &str) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    for k in 1..=1000u32 {
        let name = if k == 1 {
            format!("{stem}.til")
        } else {
            format!("{stem}-{k}.til")
        };
        let path = dir.join(name);
        match std::fs::read_to_string(&path) {
            Ok(existing) if existing == contents => return Some(path),
            Ok(_) => continue, // occupied by a different repro: keep looking
            Err(_) => {
                std::fs::write(&path, contents).ok()?;
                return Some(path);
            }
        }
    }
    None
}

/// Write a self-describing `.til` reproducer to `dir`. Returns `None` (and
/// stays silent) on any I/O failure — repro writing must never be able to
/// fail a compilation.
///
/// The filename carries the full 64-bit hash of the reduced body and the
/// diverging arguments, and [`write_unique_til`] resolves any residual
/// collision by suffixing rather than overwriting, so two distinct repros
/// can never silently alias one file.
fn write_repro(
    dir: &Path,
    f: &Function,
    hb: BlockId,
    s: BlockId,
    args: &[i64],
    seed: u64,
) -> Option<PathBuf> {
    use std::collections::hash_map::DefaultHasher;
    use std::fmt::Write as _;
    use std::hash::{Hash, Hasher};

    let body = f.to_string();
    let mut hasher = DefaultHasher::new();
    body.hash(&mut hasher);
    args.hash(&mut hasher);
    let stem = format!("{}-{:016x}", f.name, hasher.finish());

    let mut text = String::new();
    let _ = writeln!(
        text,
        "# differential-oracle repro: merging {s} into {hb} changes behaviour"
    );
    let _ = writeln!(text, "# diverging args: {args:?} (oracle seed {seed})");
    let _ = writeln!(
        text,
        "# to reproduce: parse this function, run merge_blocks({hb}, {s}), compare runs"
    );
    text.push_str(&body);
    write_unique_til(dir, &stem, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::testgen::{generate, GenConfig};

    #[test]
    fn identical_functions_never_mismatch() {
        let f = generate(7, &GenConfig::default());
        let cfg = OracleConfig::default();
        assert_eq!(first_mismatch(&f, &f, &cfg), None);
    }

    #[test]
    fn detects_a_behaviour_change() {
        let f = generate(7, &GenConfig::default());
        let mut g = f.clone();
        // Sabotage: make the entry return immediately.
        let entry = g.entry;
        g.block_mut(entry).insts.clear();
        g.block_mut(entry).exits = vec![chf_ir::block::Exit::ret(Some(
            chf_ir::instr::Operand::Imm(12345),
        ))];
        let cfg = OracleConfig::default();
        assert!(
            first_mismatch(&f, &g, &cfg).is_some(),
            "early-return sabotage must be observable"
        );
    }

    #[test]
    fn unique_til_never_clobbers_and_dedups() {
        let dir = std::env::temp_dir().join(format!("chf_til_unique_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = write_unique_til(&dir, "repro", "contents A\n").unwrap();
        assert_eq!(a.file_name().unwrap(), "repro.til");
        // Same contents: dedup to the same file, no new file.
        let a2 = write_unique_til(&dir, "repro", "contents A\n").unwrap();
        assert_eq!(a, a2);
        // Different contents under the same stem: must NOT overwrite.
        let b = write_unique_til(&dir, "repro", "contents B\n").unwrap();
        assert_ne!(a, b);
        assert_eq!(std::fs::read_to_string(&a).unwrap(), "contents A\n");
        assert_eq!(std::fs::read_to_string(&b).unwrap(), "contents B\n");
        // And the collision chain dedups too.
        let b2 = write_unique_til(&dir, "repro", "contents B\n").unwrap();
        assert_eq!(b, b2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn greedy_reduce_shrinks_while_preserving_property() {
        let f = generate(5, &GenConfig::default());
        let blocks_before = f.block_count();
        let insts_before: usize = f.blocks().map(|(_, b)| b.insts.len()).sum();
        // Property: still verifies and still has at least 2 blocks.
        let keeps =
            |cand: &Function| chf_ir::verify::verify(cand).is_ok() && cand.block_count() >= 2;
        let reduced = greedy_reduce(f, &[], &keeps);
        assert!(chf_ir::verify::verify(&reduced).is_ok());
        assert!(reduced.block_count() >= 2);
        let insts_after: usize = reduced.blocks().map(|(_, b)| b.insts.len()).sum();
        assert!(
            reduced.block_count() < blocks_before || insts_after < insts_before,
            "reducer removed nothing from a generated program"
        );
    }

    #[test]
    fn mismatch_skips_inputs_where_baseline_fails() {
        let f = generate(7, &GenConfig::default());
        let cfg = OracleConfig {
            max_blocks: 0, // baseline runs out of fuel instantly
            ..OracleConfig::default()
        };
        assert_eq!(first_mismatch(&f, &f, &cfg), None);
    }
}
