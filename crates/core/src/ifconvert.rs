//! If-conversion: the `Combine` step of `MergeBlocks` (paper §4.1–4.2).
//!
//! [`combine`] merges a successor block `S` into a hyperblock `HB` by
//! converting the control dependence `HB → S` into a data dependence:
//!
//! 1. A *guard* predicate `g` is materialized in `HB`, true exactly when the
//!    original control flow would have entered `S` (the exit to `S` fires:
//!    its own predicate holds and every higher-priority exit's predicate
//!    fails).
//! 2. `S`'s instructions are appended, predicated on `g`; instructions that
//!    were already predicated (from earlier merges) get a conjoined
//!    predicate `g ∧ q`, materialized inline so nested predication composes,
//!    as in dataflow predication (the paper's reference \[25\]).
//! 3. `S`'s exits replace the `HB → S` exit in place, preserving the
//!    priority ordering of the remaining exits. Exit predicates are
//!    conjoined with `g` (skipped when the replaced exit was the default:
//!    reaching that priority slot already implies `g`).
//!
//! The guard is always snapshotted into a fresh register before `S`'s code
//! runs, so `S` redefining the branch condition (as the unrolled copy of a
//! loop body always does) cannot corrupt the guard.

use chf_ir::block::{Exit, ExitTarget};
use chf_ir::function::Function;
use chf_ir::fxhash::{FxHashMap, FxHashSet};
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::{Instr, Opcode, Operand, Pred};
use std::fmt;

/// Why a combine was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CombineError {
    /// `HB` has no exit targeting `S`.
    NoEdge,
    /// More than one exit of `HB` targets `S`; the merge would need a
    /// disjunctive guard, which we (like the paper) simply do not attempt.
    MultipleEdges,
    /// `S` writes a register that one of `HB`'s remaining exits reads
    /// (predicate or return operand); merging would corrupt that exit.
    ClobbersRemainingExit,
    /// `S` is the function entry or `HB` itself.
    IllegalTarget,
}

impl fmt::Display for CombineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineError::NoEdge => write!(f, "no edge from hyperblock to successor"),
            CombineError::MultipleEdges => {
                write!(f, "multiple exits target the successor")
            }
            CombineError::ClobbersRemainingExit => {
                write!(f, "successor writes a register a remaining exit reads")
            }
            CombineError::IllegalTarget => write!(f, "successor may not be merged"),
        }
    }
}

impl std::error::Error for CombineError {}

/// Tracks which registers currently hold a boolean (0/1) value, so that
/// predicate normalization can reuse comparison outputs directly instead of
/// re-normalizing them — TRIPS test instructions produce predicates
/// natively, and modeling an extra `ne r, 0` per guard would serialize
/// unrolled iterations through spurious instructions.
#[derive(Default)]
struct BoolTracker {
    boolean: FxHashSet<Reg>,
    /// Registers whose last def is a *predicated* comparison: boolean
    /// whenever their guard fired, arbitrary otherwise. `cond_bool[r] = g`
    /// means `[g] r = <compare>` was the last def of `r`.
    cond_bool: FxHashMap<Reg, Reg>,
}

impl BoolTracker {
    fn from_block(blk: &chf_ir::block::Block) -> Self {
        let mut t = BoolTracker::default();
        for inst in &blk.insts {
            t.observe(inst);
        }
        t
    }

    /// Update tracking for a (to-be-)appended instruction.
    fn observe(&mut self, inst: &Instr) {
        let Some(d) = inst.def() else { return };
        // Any redefinition invalidates conditional-boolean facts about d,
        // and defs of a guard register invalidate facts conditioned on it.
        self.cond_bool.remove(&d);
        self.cond_bool.retain(|_, g| *g != d);
        // `and g, x` where x is a comparison guarded on g: if g fired, x is
        // a fresh boolean; if not, the result is 0 — boolean either way.
        let and_cond_bool = inst.op == Opcode::And
            && match (inst.a, inst.b) {
                (Some(Operand::Reg(a)), Some(Operand::Reg(b))) => {
                    (self.boolean.contains(&a) && self.cond_bool.get(&b) == Some(&a))
                        || (self.boolean.contains(&b) && self.cond_bool.get(&a) == Some(&b))
                }
                _ => false,
            };
        let op_is_bool = inst.op.is_compare()
            || (matches!(inst.op, Opcode::And | Opcode::Or | Opcode::Xor)
                && self.operand_is_bool(inst.a)
                && self.operand_is_bool(inst.b))
            || and_cond_bool
            || (inst.op == Opcode::Mov && self.operand_is_bool(inst.a));
        // A predicated def may leave the old (arbitrary) value behind.
        if op_is_bool && inst.pred.is_none() {
            self.boolean.insert(d);
        } else {
            self.boolean.remove(&d);
            if inst.op.is_compare() {
                if let Some(p) = inst.pred {
                    if p.if_true {
                        self.cond_bool.insert(d, p.reg);
                    }
                }
            }
        }
    }

    fn operand_is_bool(&self, o: Option<Operand>) -> bool {
        match o {
            Some(Operand::Reg(r)) => self.boolean.contains(&r),
            Some(Operand::Imm(v)) => v == 0 || v == 1,
            None => false,
        }
    }

    /// A register holding `1` iff `pred` fires: reuses the register when it
    /// is already boolean with positive polarity (and not in `forbidden`,
    /// the set of registers the merged code will redefine), otherwise emits
    /// one normalization instruction into `out`.
    fn normalize(
        &mut self,
        f: &mut Function,
        pred: Pred,
        out: &mut Vec<Instr>,
        forbidden: &FxHashSet<Reg>,
    ) -> Reg {
        if pred.if_true && self.boolean.contains(&pred.reg) && !forbidden.contains(&pred.reg) {
            return pred.reg;
        }
        let dst = f.new_reg();
        let op = if pred.if_true {
            Opcode::CmpNe
        } else {
            Opcode::CmpEq
        };
        let inst = Instr::binary(op, dst, Operand::Reg(pred.reg), Operand::Imm(0));
        self.observe(&inst);
        out.push(inst);
        dst
    }

    /// A register for the conjunction of `a` (boolean) and `pred`.
    ///
    /// When `pred`'s register was last defined by a comparison *guarded on
    /// `a` itself* (`[a] r = <compare>`), the raw register is conjoined
    /// directly: if `a` fired the value is a fresh boolean, and if `a` did
    /// not fire the conjunction is 0 regardless of the stale bits. This is
    /// the common shape of unrolled iterations (each test guarded by the
    /// previous iteration's guard) and avoids a normalization instruction
    /// per iteration.
    fn conjoin(
        &mut self,
        f: &mut Function,
        a: Reg,
        pred: Pred,
        out: &mut Vec<Instr>,
        forbidden: &FxHashSet<Reg>,
    ) -> Reg {
        let qn = if pred.if_true && self.cond_bool.get(&pred.reg) == Some(&a) {
            pred.reg
        } else {
            self.normalize(f, pred, out, forbidden)
        };
        let dst = f.new_reg();
        let inst = Instr::binary(Opcode::And, dst, Operand::Reg(a), Operand::Reg(qn));
        self.observe(&inst);
        out.push(inst);
        dst
    }
}

/// Build the guard for entering `S` through exit `k` of `HB`: the
/// conjunction of the negations of all earlier exit predicates with exit
/// `k`'s own predicate. Returns `None` when the exit is unconditional and
/// first (no guard needed), otherwise the guard register; any instructions
/// needed are appended to `out`.
fn build_guard(
    f: &mut Function,
    bools: &mut BoolTracker,
    exits: &[Exit],
    k: usize,
    out: &mut Vec<Instr>,
    forbidden: &FxHashSet<Reg>,
) -> Option<Reg> {
    let mut components: Vec<Pred> = exits[..k]
        .iter()
        .map(|e| e.pred.expect("non-last exits are predicated").negate())
        .collect();
    if let Some(p) = exits[k].pred {
        components.push(p);
    }
    let mut acc: Option<Reg> = None;
    for c in components {
        acc = Some(match acc {
            None => bools.normalize(f, c, out, forbidden),
            Some(prev) => bools.conjoin(f, prev, c, out, forbidden),
        });
    }
    acc
}

/// Merge block `s` into `hb`, removing `s` from the function.
///
/// `s` must have `hb` as its only predecessor (callers establish this with
/// tail/head duplication first — see [`crate::duplication`]).
///
/// # Errors
/// Returns a [`CombineError`] and leaves `f` untouched if the merge is
/// structurally impossible.
pub fn combine(f: &mut Function, hb: BlockId, s: BlockId) -> Result<(), CombineError> {
    combine_with(f, hb, s, true)
}

/// [`combine`] with speculation optionally disabled (every merged
/// instruction keeps a guard). Used by the speculation ablation; real
/// hyperblock compilers always speculate.
pub fn combine_with(
    f: &mut Function,
    hb: BlockId,
    s: BlockId,
    speculation: bool,
) -> Result<(), CombineError> {
    combine_with_liveness(f, hb, s, speculation, None)
}

/// [`combine_with`] with an optionally pre-computed liveness solution for
/// the *current* state of `f`. The convergent formation driver passes the
/// solution it caches across rolled-back trials (the CFG is bit-identical
/// between failed trials, so the cached solution stays exact); `None`
/// computes liveness here.
pub(crate) fn combine_with_liveness(
    f: &mut Function,
    hb: BlockId,
    s: BlockId,
    speculation: bool,
    cached_liveness: Option<&chf_ir::liveness::Liveness>,
) -> Result<(), CombineError> {
    if s == f.entry || s == hb {
        return Err(CombineError::IllegalTarget);
    }
    let edges: Vec<usize> = f
        .block(hb)
        .exits
        .iter()
        .enumerate()
        .filter(|(_, e)| e.target == ExitTarget::Block(s))
        .map(|(i, _)| i)
        .collect();
    let k = match edges.as_slice() {
        [] => return Err(CombineError::NoEdge),
        [k] => *k,
        _ => return Err(CombineError::MultipleEdges),
    };

    // Hazard: S must not write registers read by exits of *higher priority*
    // than the merged edge. (Those exits fire exactly when the guard is
    // false in the pre-S state — but a guarded write by S could flip their
    // predicate before the merged block evaluates them.) Exits *after* the
    // merged edge are only ever evaluated when the guard was false, i.e.
    // when every write in S was nullified, so they are safe.
    let s_defs: FxHashSet<Reg> = f.block(s).insts.iter().filter_map(|i| i.def()).collect();
    for e in &f.block(hb).exits[..k] {
        if let Some(p) = e.pred {
            if s_defs.contains(&p.reg) {
                return Err(CombineError::ClobbersRemainingExit);
            }
        }
        if let ExitTarget::Return(Some(Operand::Reg(r))) = e.target {
            if s_defs.contains(&r) {
                return Err(CombineError::ClobbersRemainingExit);
            }
        }
    }

    let hb_exits = f.block(hb).exits.clone();
    let s_block = f.block(s).clone();
    let k_is_default = k == hb_exits.len() - 1;

    // Speculation (predicate promotion): an instruction from S only needs a
    // guard if executing it when the guard is false could corrupt a value
    // some *other* path reads — i.e. its destination's old value is
    // consumed when control leaves through one of HB's remaining exits.
    // Everything else (address arithmetic, loads, tests, dead-on-exit
    // temporaries) executes speculatively, as in classical hyperblock
    // compilers: "unpredicated instructions within the block execute when
    // they receive operands" (§4.1). Stores always keep their guard.
    let protected: FxHashSet<Reg> = {
        let computed;
        let liveness = match cached_liveness {
            Some(lv) => lv,
            None => {
                computed = chf_ir::liveness::Liveness::compute(f);
                &computed
            }
        };
        let mut set = FxHashSet::default();
        for (i, e) in f.block(hb).exits.iter().enumerate() {
            if i == k {
                continue;
            }
            if let Some(p) = e.pred {
                set.insert(p.reg);
            }
            match e.target {
                ExitTarget::Block(t) => set.extend(liveness.live_in(t).iter()),
                ExitTarget::Return(Some(Operand::Reg(r))) => {
                    set.insert(r);
                }
                ExitTarget::Return(_) => {}
            }
        }
        set
    };

    // 1. Guard. Boolean-valued predicate sources (comparison outputs) are
    // reused directly, as TRIPS test instructions produce predicates
    // natively; registers S redefines cannot be reused (the guard must be a
    // stable snapshot of the entry condition).
    let mut bools = BoolTracker::from_block(f.block(hb));
    let mut merged_insts: Vec<Instr> = Vec::new();
    let guard_reg = build_guard(f, &mut bools, &hb_exits, k, &mut merged_insts, &s_defs);
    let guard_pred = guard_reg.map(Pred::on_true);
    let no_forbid = FxHashSet::default();

    // 2. Predicate S's instructions.
    // Cache of (pred reg, polarity) → conjoined guard register, invalidated
    // when S redefines the predicate register.
    let mut conj_cache: Vec<(Pred, Reg)> = Vec::new();
    for inst in &s_block.insts {
        let mut inst = inst.clone();
        // Speculate when safe: skip guarding entirely.
        let speculate = speculation
            && !inst.has_side_effect()
            && inst.def().map(|d| !protected.contains(&d)).unwrap_or(false);
        if speculate {
            if let Some(d) = inst.def() {
                conj_cache.retain(|(p, _)| p.reg != d);
            }
            bools.observe(&inst);
            merged_insts.push(inst);
            continue;
        }
        match (guard_pred, inst.pred) {
            (None, _) => {}
            (Some(g), None) => inst.pred = Some(g),
            (Some(g), Some(q)) => {
                let cached = conj_cache.iter().find(|(p, _)| *p == q).map(|(_, r)| *r);
                let gq = match cached {
                    Some(r) => r,
                    None => {
                        let dst = bools.conjoin(f, g.reg, q, &mut merged_insts, &no_forbid);
                        conj_cache.push((q, dst));
                        dst
                    }
                };
                inst.pred = Some(Pred::on_true(gq));
            }
        }
        if let Some(d) = inst.def() {
            conj_cache.retain(|(p, _)| p.reg != d);
        }
        bools.observe(&inst);
        merged_insts.push(inst);
    }

    // 3. Rewrite S's exits. When exit k was HB's default, reaching its
    // priority slot already implies the guard, so S's exits keep their own
    // predicates. Otherwise conjoin with the guard, evaluated after S's
    // instructions (exit-time values).
    let mut s_exits: Vec<Exit> = Vec::with_capacity(s_block.exits.len());
    if let (false, Some(g)) = (k_is_default, guard_pred) {
        for e in &s_block.exits {
            let mut e = *e;
            e.pred = Some(match e.pred {
                None => g,
                Some(q) => {
                    let dst = bools.conjoin(f, g.reg, q, &mut merged_insts, &no_forbid);
                    Pred::on_true(dst)
                }
            });
            s_exits.push(e);
        }
    } else {
        s_exits.extend(s_block.exits.iter().copied());
    }

    // 4. Splice.
    let mut new_exits = Vec::with_capacity(hb_exits.len() - 1 + s_exits.len());
    new_exits.extend(hb_exits[..k].iter().copied());
    new_exits.extend(s_exits);
    new_exits.extend(hb_exits[k + 1..].iter().copied());

    {
        let hb_blk = f.block_mut(hb);
        hb_blk.insts.extend(merged_insts);
        hb_blk.exits = new_exits;
        if let Some(sn) = &s_block.name {
            let base = hb_blk.name.clone().unwrap_or_default();
            hb_blk.name = Some(if base.is_empty() {
                sn.clone()
            } else {
                format!("{base}+{sn}")
            });
        }
    }
    f.remove_block(s);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::verify::verify;

    fn reg(r: Reg) -> Operand {
        Operand::Reg(r)
    }

    /// entry: c = p0 < 10; branch c then els; then: ... ret; els: ... ret
    fn diamond_arm() -> (Function, BlockId, BlockId, BlockId) {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let t = fb.create_block();
        let z = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(10));
        fb.branch(c, t, z);
        fb.switch_to(t);
        let a = fb.add(reg(fb.param(0)), Operand::Imm(1));
        fb.ret(Some(reg(a)));
        fb.switch_to(z);
        let b = fb.mul(reg(fb.param(0)), Operand::Imm(2));
        fb.ret(Some(reg(b)));
        (fb.build().unwrap(), e, t, z)
    }

    fn behaviour(f: &Function, arg: i64) -> (Option<i64>, Vec<(i64, i64)>) {
        chf_sim::functional::run(f, &[arg], &[], &chf_sim::functional::RunConfig::default())
            .unwrap()
            .digest()
    }

    #[test]
    fn merge_taken_arm() {
        let (mut f, e, t, _z) = diamond_arm();
        let orig = f.clone();
        combine(&mut f, e, t).unwrap();
        verify(&f).unwrap();
        assert!(!f.contains_block(t));
        for arg in [0, 5, 10, 50] {
            assert_eq!(behaviour(&f, arg), behaviour(&orig, arg), "arg {arg}");
        }
        // Merged instructions are predicated.
        assert!(f.block(e).is_predicated());
    }

    #[test]
    fn merge_default_arm() {
        let (mut f, e, _t, z) = diamond_arm();
        let orig = f.clone();
        combine(&mut f, e, z).unwrap();
        verify(&f).unwrap();
        for arg in [0, 9, 10, 50] {
            assert_eq!(behaviour(&f, arg), behaviour(&orig, arg), "arg {arg}");
        }
    }

    #[test]
    fn merge_both_arms_sequentially() {
        let (mut f, e, t, z) = diamond_arm();
        let orig = f.clone();
        combine(&mut f, e, t).unwrap();
        combine(&mut f, e, z).unwrap();
        verify(&f).unwrap();
        assert_eq!(f.block_count(), 1);
        for arg in [0, 9, 10, 50, -3] {
            assert_eq!(behaviour(&f, arg), behaviour(&orig, arg), "arg {arg}");
        }
    }

    #[test]
    fn straight_line_concatenation_needs_no_guard() {
        let mut fb = FunctionBuilder::new("f", 1);
        let a = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(a);
        let x = fb.add(reg(fb.param(0)), Operand::Imm(1));
        fb.jump(b);
        fb.switch_to(b);
        let y = fb.mul(reg(x), Operand::Imm(3));
        fb.ret(Some(reg(y)));
        let mut f = fb.build().unwrap();
        let orig = f.clone();
        combine(&mut f, a, b).unwrap();
        verify(&f).unwrap();
        assert_eq!(f.block_count(), 1);
        assert!(!f.block(a).is_predicated(), "no predication needed");
        assert_eq!(behaviour(&f, 7), behaviour(&orig, 7));
    }

    #[test]
    fn nested_merge_composes_predicates() {
        // entry -> (t -> (t2 | ret) | ret): merge t then t2; t2's code must
        // be predicated on the conjunction of both conditions.
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        let t = fb.create_block();
        let t2 = fb.create_block();
        let out = fb.create_block();
        fb.switch_to(e);
        let c1 = fb.cmp_gt(reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c1, t, out);
        fb.switch_to(t);
        let c2 = fb.cmp_gt(reg(fb.param(1)), Operand::Imm(0));
        fb.branch(c2, t2, out);
        fb.switch_to(t2);
        fb.store(Operand::Imm(0), Operand::Imm(99));
        fb.jump(out);
        fb.switch_to(out);
        fb.ret(Some(Operand::Imm(0)));
        let mut f = fb.build().unwrap();
        let orig = f.clone();
        combine(&mut f, e, t).unwrap();
        combine(&mut f, e, t2).unwrap();
        verify(&f).unwrap();
        let run = |f: &Function, a: i64, b: i64| {
            chf_sim::functional::run(f, &[a, b], &[], &Default::default())
                .unwrap()
                .digest()
        };
        for (a, b) in [(1, 1), (1, -1), (-1, 1), (-1, -1)] {
            assert_eq!(run(&f, a, b), run(&orig, a, b), "({a},{b})");
        }
    }

    #[test]
    fn self_loop_unroll_style_merge() {
        // B: i += 1; c = i < n; [c] -> B' ; -> exit — merging the duplicated
        // body B' into B must keep loop semantics.
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(body);
        fb.switch_to(body);
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        let c = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(c, body, exit);
        fb.switch_to(exit);
        fb.ret(Some(reg(i)));
        let mut f = fb.build().unwrap();
        let orig = f.clone();

        // Duplicate body -> copy, retarget back edge to copy (Figure 4).
        let copy = f.duplicate_block(body);
        f.block_mut(body).retarget_exits(body, copy);
        verify(&f).unwrap();
        combine(&mut f, body, copy).unwrap();
        verify(&f).unwrap();
        for arg in [0, 1, 2, 7, 8] {
            assert_eq!(behaviour(&f, arg), behaviour(&orig, arg), "arg {arg}");
        }
    }

    #[test]
    fn rejects_multiple_edges() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let s = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c, s, s);
        fb.switch_to(s);
        fb.ret(None);
        let mut f = fb.build().unwrap();
        assert_eq!(combine(&mut f, e, s), Err(CombineError::MultipleEdges));
    }

    #[test]
    fn rejects_entry_and_self() {
        let (mut f, e, t, _) = diamond_arm();
        assert_eq!(combine(&mut f, t, e), Err(CombineError::IllegalTarget));
        assert_eq!(combine(&mut f, e, e), Err(CombineError::IllegalTarget));
    }

    #[test]
    fn rejects_clobbering_higher_priority_exit() {
        // entry has three exits: [c1] -> x, [c2] -> s, -> y.
        // s writes c1, the predicate of a *higher-priority* exit, which the
        // merged block evaluates after s's (guarded) code — refused.
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let s = fb.create_block();
        let x = fb.create_block();
        let y = fb.create_block();
        fb.switch_to(e);
        let c1 = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(0));
        let c2 = fb.cmp_gt(reg(fb.param(0)), Operand::Imm(10));
        fb.jump(y); // placeholder default; rewritten below
        fb.switch_to(s);
        fb.mov_to(c1, Operand::Imm(1));
        fb.ret(None);
        fb.switch_to(x);
        fb.ret(None);
        fb.switch_to(y);
        fb.ret(None);
        let mut f = fb.build().unwrap();
        f.block_mut(e).exits = vec![
            Exit::when(Pred::on_true(c1), x),
            Exit::when(Pred::on_true(c2), s),
            Exit::jump(y),
        ];
        assert_eq!(
            combine(&mut f, e, s),
            Err(CombineError::ClobbersRemainingExit)
        );
    }

    #[test]
    fn allows_clobbering_lower_priority_exit() {
        // s (merged via the first exit) rewrites the register that the
        // *later* ret exit returns. That exit only fires when the guard was
        // false, i.e. when s's write was nullified — legal, and behaviour
        // must be preserved.
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let s = fb.create_block();
        fb.switch_to(e);
        let acc = fb.mov(Operand::Imm(5));
        let c = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(0));
        let dummy = fb.create_block();
        fb.branch(c, s, dummy);
        fb.switch_to(dummy);
        fb.ret(Some(reg(acc)));
        fb.switch_to(s);
        let acc2 = fb.add(reg(acc), Operand::Imm(100));
        fb.mov_to(acc, reg(acc2));
        fb.ret(Some(reg(acc)));
        let mut f = fb.build().unwrap();
        // Inline dummy's ret into entry so the later exit reads acc directly.
        combine(&mut f, e, dummy).unwrap();
        let orig = f.clone();
        combine(&mut f, e, s).unwrap();
        verify(&f).unwrap();
        for arg in [-4, 0, 4] {
            assert_eq!(behaviour(&f, arg), behaviour(&orig, arg), "arg {arg}");
        }
    }

    #[test]
    fn guard_snapshot_tolerates_condition_clobber() {
        // s rewrites the very condition that guards it; the snapshot taken
        // before s's code keeps behaviour intact (no remaining exit reads c).
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let s = fb.create_block();
        let other = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c, s, other);
        fb.switch_to(s);
        fb.mov_to(c, Operand::Imm(0));
        fb.ret(Some(Operand::Imm(1)));
        fb.switch_to(other);
        fb.ret(Some(Operand::Imm(2)));
        let mut f = fb.build().unwrap();
        let orig = f.clone();
        combine(&mut f, e, s).unwrap();
        verify(&f).unwrap();
        for arg in [-5, 0, 5] {
            assert_eq!(behaviour(&f, arg), behaviour(&orig, arg), "arg {arg}");
        }
    }
}
