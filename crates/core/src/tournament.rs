//! Per-function policy tournaments: run a small portfolio of
//! block-selection policies, score each entrant on the training input, and
//! keep the winner's formed blocks.
//!
//! PR 4's equal-budget ablation showed no fixed policy dominates: hot-first
//! wins suite totals but loses composites where structure beats profile
//! signal. The tournament closes that gap adaptively: for each function it
//! compiles every `(policy, trial-budget)` entrant of a configurable
//! portfolio, scores each by the functional simulator's dynamic block count
//! on the training input (event-sim cycles behind an opt-in metric), and
//! keeps the artifact with the best score. Entrant enumeration, scoring,
//! and tie-breaking are fully deterministic, so a tournament run at any
//! worker count picks the same winner.
//!
//! This module is the *sequential* core. The compile service layers the
//! parallel path on top (portfolio fan-out through `submit_batch`) plus a
//! CFG-shape cache so recurring shapes skip the tournament entirely; see
//! `chf-service`.

use crate::pipeline::{try_compile, CompileConfig, Compiled};
use crate::policy::PolicyKind;
use crate::ChfError;
use chf_ir::function::Function;
use chf_ir::profile::ProfileData;
use chf_sim::functional::{run, RunConfig};
use chf_sim::timing::{simulate_timing, TimingConfig};

/// What a tournament scores entrants by. Lower is always better.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ScoreMetric {
    /// Dynamic block count under the functional simulator — the paper's
    /// Table 3 proxy and the default: cheap, deterministic, and strongly
    /// correlated with cycles (Figure 7, r² ≈ 0.78).
    DynamicBlocks,
    /// Cycle count under the event-driven timing simulator. Opt-in: an
    /// order of magnitude slower per entrant, for when the proxy's
    /// correlation is not enough.
    EventCycles,
}

/// Portfolio and scoring configuration of a tournament.
#[derive(Clone, Debug)]
pub struct TournamentConfig {
    /// Policies entered, in deterministic tie-break order (earlier wins
    /// ties).
    pub policies: Vec<PolicyKind>,
    /// Trial-budget points each policy is entered at (`None` = unbounded).
    /// The portfolio is the cross product `policies × budgets`.
    pub budgets: Vec<Option<usize>>,
    /// Scoring metric.
    pub metric: ScoreMetric,
    /// Shape-cache guard band, in permille of baseline improvement: a hot
    /// (cached-winner) compile whose improvement falls more than this far
    /// below the cached score triggers a full tournament instead of
    /// trusting the stale winner. Used by the service layer.
    pub guard_band_permille: u32,
    /// Base compiler configuration every entrant is derived from (entrants
    /// override only `policy` and `trial_budget`).
    pub base: CompileConfig,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            policies: vec![
                PolicyKind::BreadthFirst,
                PolicyKind::HotFirst,
                PolicyKind::DepthFirst,
            ],
            budgets: vec![Some(16), None],
            metric: ScoreMetric::DynamicBlocks,
            guard_band_permille: 20,
            base: CompileConfig::convergent(),
        }
    }
}

impl TournamentConfig {
    /// The portfolio as `(label, config)` pairs, in deterministic entrant
    /// order (policy-major, so ties resolve to the earlier policy at the
    /// tighter budget). Labels render the budget point (`HF@16`, `DF@unb`).
    pub fn entrants(&self) -> Vec<(String, CompileConfig)> {
        let mut out = Vec::with_capacity(self.policies.len() * self.budgets.len());
        for &policy in &self.policies {
            for &budget in &self.budgets {
                let mut config = self.base.clone();
                config.policy = policy;
                config.trial_budget = budget;
                out.push((entrant_label(policy, budget), config));
            }
        }
        out
    }
}

/// Stable label for one `(policy, budget)` entrant.
pub fn entrant_label(policy: PolicyKind, budget: Option<usize>) -> String {
    match budget {
        Some(b) => format!("{}@{b}", policy.label()),
        None => format!("{}@unb", policy.label()),
    }
}

/// One scored entrant.
#[derive(Clone, Debug)]
pub struct Entrant {
    /// Display label (`BF@16`, `HF@unb`, …).
    pub label: String,
    /// The policy entered.
    pub policy: PolicyKind,
    /// The trial budget entered at.
    pub budget: Option<usize>,
    /// Metric score (lower is better); `None` when the entrant failed to
    /// compile, simulate, or preserve behaviour (it is then excluded from
    /// winner selection rather than poisoning the tournament).
    pub score: Option<u64>,
    /// Formation trials the entrant spent.
    pub trials: usize,
}

/// Outcome of one tournament.
#[derive(Clone, Debug)]
pub struct TournamentResult {
    /// The winning artifact, with
    /// [`FormationStats::tournament_entrants`](crate::FormationStats)
    /// stamped to the portfolio size that produced it.
    pub winner: Compiled,
    /// Winning policy.
    pub policy: PolicyKind,
    /// Winning trial budget.
    pub budget: Option<usize>,
    /// Winning entrant's label.
    pub label: String,
    /// Winning entrant's score.
    pub score: u64,
    /// Baseline score of the *uncompiled* input on the same metric, for
    /// normalizing scores into improvements (shape-cache guard band).
    pub baseline: u64,
    /// Every entrant, in portfolio order, with its score.
    pub entrants: Vec<Entrant>,
}

impl TournamentResult {
    /// The winner's improvement over baseline, in permille (negative when
    /// the winner is *worse* than the uncompiled input — possible under
    /// pathological budgets).
    pub fn improvement_permille(&self) -> i64 {
        improvement_permille(self.baseline, self.score)
    }
}

/// Improvement of `score` over `baseline`, in permille of `baseline`.
pub fn improvement_permille(baseline: u64, score: u64) -> i64 {
    if baseline == 0 {
        return 0;
    }
    (baseline as i64 - score as i64) * 1000 / baseline as i64
}

/// Observable behaviour of a run — the functional simulator's digest
/// (return value plus final memory), which every entrant must reproduce.
pub type BehaviourDigest = (Option<i64>, Vec<(i64, i64)>);

/// Score one compiled artifact on `metric`, verifying behaviour against the
/// expected functional digest of the uncompiled input.
///
/// # Errors
/// A message when simulation fails or the artifact changed observable
/// behaviour — the tournament must never crown a miscompile.
pub fn score(
    compiled: &Function,
    args: &[i64],
    memory: &[(i64, i64)],
    metric: ScoreMetric,
    expected_digest: &BehaviourDigest,
) -> Result<u64, String> {
    let r = run(compiled, args, memory, &RunConfig::default())
        .map_err(|e| format!("functional simulation failed: {e}"))?;
    if &r.digest() != expected_digest {
        return Err("behaviour changed (functional digest mismatch)".to_string());
    }
    match metric {
        ScoreMetric::DynamicBlocks => Ok(r.blocks_executed),
        ScoreMetric::EventCycles => {
            let t = simulate_timing(compiled, args, memory, &TimingConfig::trips())
                .map_err(|e| format!("timing simulation failed: {e}"))?;
            Ok(t.cycles)
        }
    }
}

/// Functional digest and baseline score of the uncompiled input — the
/// reference every entrant is validated and normalized against.
///
/// # Errors
/// A message when the input itself fails to simulate.
pub fn baseline(
    f: &Function,
    args: &[i64],
    memory: &[(i64, i64)],
    metric: ScoreMetric,
) -> Result<(BehaviourDigest, u64), String> {
    let r = run(f, args, memory, &RunConfig::default())
        .map_err(|e| format!("baseline simulation failed: {e}"))?;
    let digest = r.digest();
    let score = match metric {
        ScoreMetric::DynamicBlocks => r.blocks_executed,
        ScoreMetric::EventCycles => {
            let t = simulate_timing(f, args, memory, &TimingConfig::trips())
                .map_err(|e| format!("baseline timing simulation failed: {e}"))?;
            t.cycles
        }
    };
    Ok((digest, score))
}

/// Run the full portfolio sequentially and crown a winner.
///
/// Deterministic: entrants are enumerated, compiled, and scored in
/// portfolio order, and ties go to the earlier entrant — a tournament at
/// any parallelism (the service fans entrants out but scores in the same
/// order) selects the same winner.
///
/// # Errors
/// [`ChfError`] when the baseline cannot be established or *every* entrant
/// fails; individual entrant failures are contained and recorded on the
/// entrant.
pub fn run_tournament(
    f: &Function,
    profile: &ProfileData,
    args: &[i64],
    memory: &[(i64, i64)],
    config: &TournamentConfig,
) -> Result<TournamentResult, ChfError> {
    let (digest, base_score) =
        baseline(f, args, memory, config.metric).map_err(|message| ChfError::Panicked {
            context: "tournament baseline",
            message,
        })?;

    let mut entrants = Vec::new();
    let mut best: Option<(usize, u64, Compiled)> = None;
    for (idx, (label, entrant_config)) in config.entrants().into_iter().enumerate() {
        let (policy, budget) = (entrant_config.policy, entrant_config.trial_budget);
        let scored = try_compile(f, profile, &entrant_config)
            .map_err(|e| e.to_string())
            .and_then(|compiled| {
                score(&compiled.function, args, memory, config.metric, &digest)
                    .map(|s| (compiled, s))
            });
        match scored {
            Ok((compiled, s)) => {
                entrants.push(Entrant {
                    label,
                    policy,
                    budget,
                    score: Some(s),
                    trials: compiled.stats.trials,
                });
                // Strict `<` keeps the earliest entrant on ties.
                if best.as_ref().map(|(_, b, _)| s < *b).unwrap_or(true) {
                    best = Some((idx, s, compiled));
                }
            }
            Err(_) => entrants.push(Entrant {
                label,
                policy,
                budget,
                score: None,
                trials: 0,
            }),
        }
    }

    let (idx, score, mut winner) = best.ok_or(ChfError::Panicked {
        context: "tournament",
        message: "every portfolio entrant failed".to_string(),
    })?;
    winner.stats.tournament_entrants = entrants.len();
    Ok(TournamentResult {
        winner,
        policy: entrants[idx].policy,
        budget: entrants[idx].budget,
        label: entrants[idx].label.clone(),
        score,
        baseline: base_score,
        entrants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Operand;
    use chf_sim::functional::profile_run;

    fn loopy() -> (Function, Vec<i64>) {
        let mut fb = FunctionBuilder::new("loopy", 1);
        let entry = fb.create_block();
        let header = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(entry);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_lt(Operand::Reg(i), Operand::Reg(fb.param(0)));
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let a2 = fb.add(Operand::Reg(acc), Operand::Reg(i));
        fb.mov_to(acc, Operand::Reg(a2));
        let i2 = fb.add(Operand::Reg(i), Operand::Imm(1));
        fb.mov_to(i, Operand::Reg(i2));
        fb.jump(header);
        fb.switch_to(exit);
        fb.ret(Some(Operand::Reg(acc)));
        (fb.build().unwrap(), vec![10])
    }

    #[test]
    fn entrants_are_the_cross_product_in_order() {
        let config = TournamentConfig::default();
        let entrants = config.entrants();
        assert_eq!(entrants.len(), 6);
        assert_eq!(entrants[0].0, "BF@16");
        assert_eq!(entrants[1].0, "BF@unb");
        assert_eq!(entrants[2].0, "HF@16");
        assert_eq!(entrants[5].0, "DF@unb");
        assert_eq!(entrants[3].1.trial_budget, None);
        assert_eq!(entrants[2].1.policy, PolicyKind::HotFirst);
    }

    #[test]
    fn tournament_beats_or_matches_every_entrant_and_is_deterministic() {
        let (f, args) = loopy();
        let profile = profile_run(&f, &args, &[]).unwrap();
        let config = TournamentConfig::default();
        let r1 = run_tournament(&f, &profile, &args, &[], &config).unwrap();
        let r2 = run_tournament(&f, &profile, &args, &[], &config).unwrap();
        assert_eq!(r1.label, r2.label);
        assert_eq!(r1.score, r2.score);
        assert_eq!(r1.winner.stats, r2.winner.stats);
        assert_eq!(r1.winner.stats.tournament_entrants, 6);
        for e in &r1.entrants {
            if let Some(s) = e.score {
                assert!(
                    r1.score <= s,
                    "{}: winner {} > entrant {s}",
                    e.label,
                    r1.score
                );
            }
        }
        assert!(r1.score <= r1.baseline, "formation made the loop worse");
    }

    #[test]
    fn improvement_permille_is_signed() {
        assert_eq!(improvement_permille(1000, 750), 250);
        assert_eq!(improvement_permille(1000, 1100), -100);
        assert_eq!(improvement_permille(0, 5), 0);
    }
}
