//! Random structured-program generation for property-based testing.
//!
//! Every compiler transformation in this workspace is tested for *observable
//! equivalence*: a generated program must return the same value and produce
//! the same memory image before and after the transformation. This module
//! generates arbitrarily-shaped but always-terminating programs: nested
//! bounded loops, branches on computed values, arithmetic over a small
//! variable pool, and memory traffic in a small address window.
//!
//! The generator is deterministic in its seed and dependency-free (it embeds
//! a SplitMix64 PRNG) so failures shrink to a reproducible seed.

use crate::builder::FunctionBuilder;
use crate::function::Function;
use crate::ids::Reg;
use crate::instr::{Opcode, Operand};

/// Tunable knobs for [`generate`].
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum nesting depth of loops/branches.
    pub max_depth: u32,
    /// Maximum statements per sequence.
    pub max_stmts: u32,
    /// Maximum loop trip count (loops always terminate).
    pub max_trips: u64,
    /// Number of mutable variables in the pool.
    pub num_vars: u32,
    /// Whether to emit loads/stores.
    pub memory_ops: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 3,
            max_stmts: 6,
            max_trips: 5,
            num_vars: 6,
            memory_ops: true,
        }
    }
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

struct Gen<'a> {
    rng: Rng,
    cfg: &'a GenConfig,
    vars: Vec<Reg>,
}

impl Gen<'_> {
    fn var(&mut self) -> Reg {
        self.vars[self.rng.below(self.vars.len() as u64) as usize]
    }

    fn operand(&mut self) -> Operand {
        if self.rng.chance(30) {
            Operand::Imm(self.rng.below(21) as i64 - 10)
        } else {
            Operand::Reg(self.var())
        }
    }

    fn binop(&mut self) -> Opcode {
        const OPS: &[Opcode] = &[
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::Div,
            Opcode::Rem,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::CmpEq,
            Opcode::CmpNe,
            Opcode::CmpLt,
            Opcode::CmpLe,
            Opcode::CmpGt,
            Opcode::CmpGe,
        ];
        OPS[self.rng.below(OPS.len() as u64) as usize]
    }

    /// Emit a sequence of statements into the current block; returns with
    /// the builder positioned in the block where control continues.
    fn sequence(&mut self, b: &mut FunctionBuilder, depth: u32) {
        let n = 1 + self.rng.below(self.cfg.max_stmts as u64) as u32;
        for _ in 0..n {
            let choice = self.rng.below(100);
            if depth < self.cfg.max_depth && choice < 18 {
                self.if_else(b, depth + 1);
            } else if depth < self.cfg.max_depth && choice < 30 {
                self.bounded_loop(b, depth + 1);
            } else if self.cfg.memory_ops && choice < 45 {
                self.memory_stmt(b);
            } else {
                self.arith_stmt(b);
            }
        }
    }

    fn arith_stmt(&mut self, b: &mut FunctionBuilder) {
        let op = self.binop();
        let a = self.operand();
        let c = self.operand();
        let tmp = b.emit(op, a, c);
        let dst = self.var();
        b.mov_to(dst, Operand::Reg(tmp));
    }

    fn memory_stmt(&mut self, b: &mut FunctionBuilder) {
        // Keep addresses in a small window so loads observe stores.
        let v = self.var();
        let masked = b.and(Operand::Reg(v), Operand::Imm(15));
        if self.rng.chance(50) {
            let val = self.operand();
            b.store(Operand::Reg(masked), val);
        } else {
            let x = b.load(Operand::Reg(masked));
            let dst = self.var();
            b.mov_to(dst, Operand::Reg(x));
        }
    }

    fn if_else(&mut self, b: &mut FunctionBuilder, depth: u32) {
        let cond_src = self.operand();
        let cond = b.cmp_ne(cond_src, Operand::Imm(0));
        let then_b = b.create_block();
        let else_b = b.create_block();
        let join = b.create_block();
        b.branch(cond, then_b, else_b);
        b.switch_to(then_b);
        self.sequence(b, depth);
        b.jump(join);
        b.switch_to(else_b);
        if self.rng.chance(70) {
            self.sequence(b, depth);
        }
        b.jump(join);
        b.switch_to(join);
    }

    fn bounded_loop(&mut self, b: &mut FunctionBuilder, depth: u32) {
        let trips = self.rng.below(self.cfg.max_trips + 1) as i64;
        let i = b.mov(Operand::Imm(0));
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        let c = b.cmp_lt(Operand::Reg(i), Operand::Imm(trips));
        b.branch(c, body, exit);
        b.switch_to(body);
        self.sequence(b, depth);
        let i2 = b.add(Operand::Reg(i), Operand::Imm(1));
        b.mov_to(i, Operand::Reg(i2));
        b.jump(header);
        b.switch_to(exit);
    }
}

/// Generate a random, always-terminating function with 2 parameters.
///
/// The same `(seed, config)` pair always yields the same program. The
/// function returns a hash of the variable pool, so optimizations that
/// corrupt any variable change the observable result.
pub fn generate(seed: u64, config: &GenConfig) -> Function {
    let mut b = FunctionBuilder::new(format!("gen_{seed:016x}"), 2);
    let entry = b.create_block();
    b.switch_to(entry);

    let mut g = Gen {
        rng: Rng(seed),
        cfg: config,
        vars: Vec::new(),
    };

    // Initialize the variable pool from parameters and constants.
    for k in 0..config.num_vars {
        let init = match k % 3 {
            0 => Operand::Reg(b.param(0)),
            1 => Operand::Reg(b.param(1)),
            _ => Operand::Imm(g.rng.below(100) as i64),
        };
        let v = b.mov(init);
        g.vars.push(v);
    }

    g.sequence(&mut b, 0);

    // Fold all variables (and a memory probe) into one return value.
    let mut acc = b.mov(Operand::Imm(0));
    let vars = g.vars.clone();
    for v in vars {
        let x = b.mul(Operand::Reg(acc), Operand::Imm(31));
        let y = b.add(Operand::Reg(x), Operand::Reg(v));
        acc = y;
    }
    b.ret(Some(Operand::Reg(acc)));
    b.build().expect("generated program must verify")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn deterministic_in_seed() {
        let cfg = GenConfig::default();
        let a = generate(42, &cfg);
        let b = generate(42, &cfg);
        assert_eq!(a.to_string(), b.to_string());
        let c = generate(43, &cfg);
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn generated_programs_verify() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let f = generate(seed, &cfg);
            assert_eq!(verify(&f), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn generates_interesting_shapes() {
        let cfg = GenConfig {
            max_depth: 3,
            max_stmts: 8,
            ..GenConfig::default()
        };
        let mut saw_multi_block = false;
        let mut saw_loop = false;
        for seed in 0..30 {
            let f = generate(seed, &cfg);
            if f.block_count() > 3 {
                saw_multi_block = true;
            }
            if !crate::loops::LoopForest::of(&f).loops.is_empty() {
                saw_loop = true;
            }
        }
        assert!(saw_multi_block);
        assert!(saw_loop);
    }
}
