//! Random structured-program generation for property-based testing, plus
//! the coverage-guided workload layer built on top of it.
//!
//! Every compiler transformation in this workspace is tested for *observable
//! equivalence*: a generated program must return the same value and produce
//! the same memory image before and after the transformation. This module
//! generates arbitrarily-shaped but always-terminating programs: nested
//! bounded loops, branches on computed values, arithmetic over a small
//! variable pool, and memory traffic in a small address window.
//!
//! The generator is deterministic in its seed and dependency-free (it embeds
//! a SplitMix64 PRNG) so failures shrink to a reproducible seed.
//!
//! On top of the grammar sit three pieces the trace-corpus fuzzer
//! (`chf-corpus`) consumes:
//!
//! * [`GenPlan`] — a `(seed, knobs)` pair that fully determines a generated
//!   program, round-trippable through a one-line description so corpus
//!   manifests can record exactly how an entry was produced;
//! * the [`mutate`] operators — CFG-level perturbations (splice blocks from
//!   a donor, insert or retarget branches, perturb edge profiles) and
//!   plan-level ones (grow the loop-nest grammar) that move a program to a
//!   structural neighborhood the grammar alone rarely reaches;
//! * [`CoverageMap`] — a deterministic set of `(category, cell)` pairs over
//!   merge outcomes, fault classifications, CFG-shape fingerprints, and
//!   oracle verdicts, used to decide which mutants earn a corpus slot.

use crate::builder::FunctionBuilder;
use crate::function::Function;
use crate::ids::Reg;
use crate::instr::{Opcode, Operand};
use std::collections::BTreeSet;
use std::fmt;

/// Tunable knobs for [`generate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenConfig {
    /// Maximum nesting depth of loops/branches.
    pub max_depth: u32,
    /// Maximum statements per sequence.
    pub max_stmts: u32,
    /// Maximum loop trip count (loops always terminate).
    pub max_trips: u64,
    /// Number of mutable variables in the pool.
    pub num_vars: u32,
    /// Whether to emit loads/stores.
    pub memory_ops: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 3,
            max_stmts: 6,
            max_trips: 5,
            num_vars: 6,
            memory_ops: true,
        }
    }
}

/// The SplitMix64 generator the grammar draws from, public so the corpus
/// fuzzer's mutation operators share one seeded stream with generation.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A stream fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 random bits.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    /// Bernoulli draw: true with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

type Rng = SplitMix64;

struct Gen<'a> {
    rng: Rng,
    cfg: &'a GenConfig,
    vars: Vec<Reg>,
}

impl Gen<'_> {
    fn var(&mut self) -> Reg {
        self.vars[self.rng.below(self.vars.len() as u64) as usize]
    }

    fn operand(&mut self) -> Operand {
        if self.rng.chance(30) {
            Operand::Imm(self.rng.below(21) as i64 - 10)
        } else {
            Operand::Reg(self.var())
        }
    }

    fn binop(&mut self) -> Opcode {
        const OPS: &[Opcode] = &[
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::Div,
            Opcode::Rem,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::CmpEq,
            Opcode::CmpNe,
            Opcode::CmpLt,
            Opcode::CmpLe,
            Opcode::CmpGt,
            Opcode::CmpGe,
        ];
        OPS[self.rng.below(OPS.len() as u64) as usize]
    }

    /// Emit a sequence of statements into the current block; returns with
    /// the builder positioned in the block where control continues.
    fn sequence(&mut self, b: &mut FunctionBuilder, depth: u32) {
        let n = 1 + self.rng.below(self.cfg.max_stmts as u64) as u32;
        for _ in 0..n {
            let choice = self.rng.below(100);
            if depth < self.cfg.max_depth && choice < 18 {
                self.if_else(b, depth + 1);
            } else if depth < self.cfg.max_depth && choice < 30 {
                self.bounded_loop(b, depth + 1);
            } else if self.cfg.memory_ops && choice < 45 {
                self.memory_stmt(b);
            } else {
                self.arith_stmt(b);
            }
        }
    }

    fn arith_stmt(&mut self, b: &mut FunctionBuilder) {
        let op = self.binop();
        let a = self.operand();
        let c = self.operand();
        let tmp = b.emit(op, a, c);
        let dst = self.var();
        b.mov_to(dst, Operand::Reg(tmp));
    }

    fn memory_stmt(&mut self, b: &mut FunctionBuilder) {
        // Keep addresses in a small window so loads observe stores.
        let v = self.var();
        let masked = b.and(Operand::Reg(v), Operand::Imm(15));
        if self.rng.chance(50) {
            let val = self.operand();
            b.store(Operand::Reg(masked), val);
        } else {
            let x = b.load(Operand::Reg(masked));
            let dst = self.var();
            b.mov_to(dst, Operand::Reg(x));
        }
    }

    fn if_else(&mut self, b: &mut FunctionBuilder, depth: u32) {
        let cond_src = self.operand();
        let cond = b.cmp_ne(cond_src, Operand::Imm(0));
        let then_b = b.create_block();
        let else_b = b.create_block();
        let join = b.create_block();
        b.branch(cond, then_b, else_b);
        b.switch_to(then_b);
        self.sequence(b, depth);
        b.jump(join);
        b.switch_to(else_b);
        if self.rng.chance(70) {
            self.sequence(b, depth);
        }
        b.jump(join);
        b.switch_to(join);
    }

    fn bounded_loop(&mut self, b: &mut FunctionBuilder, depth: u32) {
        let trips = self.rng.below(self.cfg.max_trips + 1) as i64;
        let i = b.mov(Operand::Imm(0));
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.jump(header);
        b.switch_to(header);
        let c = b.cmp_lt(Operand::Reg(i), Operand::Imm(trips));
        b.branch(c, body, exit);
        b.switch_to(body);
        self.sequence(b, depth);
        let i2 = b.add(Operand::Reg(i), Operand::Imm(1));
        b.mov_to(i, Operand::Reg(i2));
        b.jump(header);
        b.switch_to(exit);
    }
}

/// Generate a random, always-terminating function with 2 parameters.
///
/// The same `(seed, config)` pair always yields the same program. The
/// function returns a hash of the variable pool, so optimizations that
/// corrupt any variable change the observable result.
pub fn generate(seed: u64, config: &GenConfig) -> Function {
    let mut b = FunctionBuilder::new(format!("gen_{seed:016x}"), 2);
    let entry = b.create_block();
    b.switch_to(entry);

    let mut g = Gen {
        rng: SplitMix64::new(seed),
        cfg: config,
        vars: Vec::new(),
    };

    // Initialize the variable pool from parameters and constants.
    for k in 0..config.num_vars {
        let init = match k % 3 {
            0 => Operand::Reg(b.param(0)),
            1 => Operand::Reg(b.param(1)),
            _ => Operand::Imm(g.rng.below(100) as i64),
        };
        let v = b.mov(init);
        g.vars.push(v);
    }

    g.sequence(&mut b, 0);

    // Fold all variables (and a memory probe) into one return value.
    let mut acc = b.mov(Operand::Imm(0));
    let vars = g.vars.clone();
    for v in vars {
        let x = b.mul(Operand::Reg(acc), Operand::Imm(31));
        let y = b.add(Operand::Reg(x), Operand::Reg(v));
        acc = y;
    }
    b.ret(Some(Operand::Reg(acc)));
    b.build().expect("generated program must verify")
}

/// A fully-reproducible generation recipe: the seed plus every grammar
/// knob. Corpus manifests record a plan's [`GenPlan::describe`] line so any
/// checked-in entry can be traced back to (and regenerated from) the exact
/// generator call that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenPlan {
    /// Generator seed.
    pub seed: u64,
    /// Grammar knobs.
    pub cfg: GenConfig,
}

impl GenPlan {
    /// A plan with the default knobs.
    pub fn new(seed: u64) -> Self {
        GenPlan {
            seed,
            cfg: GenConfig::default(),
        }
    }

    /// Run the grammar: [`generate`] with this plan's seed and knobs.
    pub fn generate(&self) -> Function {
        generate(self.seed, &self.cfg)
    }

    /// One-line, order-stable description, e.g.
    /// `seed=7 depth=3 stmts=6 trips=5 vars=6 mem=1`.
    pub fn describe(&self) -> String {
        format!(
            "seed={} depth={} stmts={} trips={} vars={} mem={}",
            self.seed,
            self.cfg.max_depth,
            self.cfg.max_stmts,
            self.cfg.max_trips,
            self.cfg.num_vars,
            self.cfg.memory_ops as u8
        )
    }

    /// Parse a [`GenPlan::describe`] line back into a plan. Unknown keys
    /// are rejected so manifest typos surface as load errors, not silent
    /// knob defaults.
    pub fn from_describe(s: &str) -> Option<GenPlan> {
        let mut plan = GenPlan::new(0);
        for tok in s.split_whitespace() {
            let (key, value) = tok.split_once('=')?;
            let n: u64 = value.parse().ok()?;
            match key {
                "seed" => plan.seed = n,
                "depth" => plan.cfg.max_depth = u32::try_from(n).ok()?,
                "stmts" => plan.cfg.max_stmts = u32::try_from(n).ok()?,
                "trips" => plan.cfg.max_trips = n,
                "vars" => plan.cfg.num_vars = u32::try_from(n).ok()?,
                "mem" => plan.cfg.memory_ops = n != 0,
                _ => return None,
            }
        }
        Some(plan)
    }

    /// Plan-level mutation: reseed and nudge the grammar knobs, biased
    /// toward *growing* loop nests and statement counts — the structural
    /// directions the default knobs under-sample. Always changes the seed
    /// so the mutant is a genuinely different program.
    pub fn mutate(&self, rng: &mut SplitMix64) -> GenPlan {
        let mut m = self.clone();
        m.seed = rng.next();
        match rng.below(5) {
            0 => m.cfg.max_depth = (m.cfg.max_depth + 1).min(6), // grow loop nests
            1 => m.cfg.max_stmts = (m.cfg.max_stmts + 1 + rng.below(4) as u32).min(16),
            2 => m.cfg.max_trips = (m.cfg.max_trips + 1 + rng.below(6)).min(24),
            3 => m.cfg.num_vars = (2 + rng.below(10) as u32).max(2),
            _ => m.cfg.memory_ops = !m.cfg.memory_ops,
        }
        m
    }
}

/// CFG-level mutation operators over already-built functions.
///
/// Each operator takes the seeded stream and returns whether it changed
/// anything. Operators promise *well-formed output only under the plain
/// structural rules they can see locally* (exit ordering, register ranges);
/// global invariants — reachability, predicate defs, termination — are the
/// admission filter's job: the corpus fuzzer runs [`crate::verify::verify_full`]
/// and a fueled baseline execution on every mutant and classifies rejects
/// instead of admitting them.
pub mod mutate {
    use super::SplitMix64;
    use crate::block::{Exit, ExitTarget};
    use crate::function::Function;
    use crate::ids::{BlockId, Reg};
    use crate::instr::Pred;
    use crate::profile::ProfileData;

    /// Which operator produced a mutant — recorded in corpus manifests as
    /// provenance.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum MutationKind {
        /// Instructions from a donor block spliced into a block.
        Splice,
        /// A fresh predicated branch inserted between existing blocks.
        InsertBranch,
        /// An existing branch retargeted at a different block.
        RetargetBranch,
        /// Edge/block profile counts rescaled.
        PerturbProfile,
        /// Plan-level reseed/knob growth ([`super::GenPlan::mutate`]).
        GrowPlan,
    }

    impl MutationKind {
        /// Every operator, in a stable order the fuzzer draws from.
        pub const ALL: [MutationKind; 5] = [
            MutationKind::Splice,
            MutationKind::InsertBranch,
            MutationKind::RetargetBranch,
            MutationKind::PerturbProfile,
            MutationKind::GrowPlan,
        ];

        /// Stable short label for manifests and summaries.
        pub fn label(self) -> &'static str {
            match self {
                MutationKind::Splice => "splice",
                MutationKind::InsertBranch => "insert-branch",
                MutationKind::RetargetBranch => "retarget-branch",
                MutationKind::PerturbProfile => "perturb-profile",
                MutationKind::GrowPlan => "grow-plan",
            }
        }
    }

    fn pick(ids: &[BlockId], rng: &mut SplitMix64) -> Option<BlockId> {
        if ids.is_empty() {
            None
        } else {
            Some(ids[rng.below(ids.len() as u64) as usize])
        }
    }

    /// Retarget one in-function branch at another existing block. The
    /// mutant may orphan a region or wrap a loop back on itself — both are
    /// shapes the grammar cannot produce, which is the point.
    pub fn retarget_branch(f: &mut Function, rng: &mut SplitMix64) -> bool {
        let ids: Vec<BlockId> = f.block_ids().collect();
        let with_branch: Vec<BlockId> = ids
            .iter()
            .copied()
            .filter(|b| {
                f.block(*b)
                    .exits
                    .iter()
                    .any(|e| matches!(e.target, ExitTarget::Block(_)))
            })
            .collect();
        let (Some(b), Some(new_target)) = (pick(&with_branch, rng), pick(&ids, rng)) else {
            return false;
        };
        let blk = f.block_mut(b);
        let branches: Vec<usize> = blk
            .exits
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.target, ExitTarget::Block(_)))
            .map(|(i, _)| i)
            .collect();
        let i = branches[rng.below(branches.len() as u64) as usize];
        if blk.exits[i].target == ExitTarget::Block(new_target) {
            return false;
        }
        blk.exits[i].target = ExitTarget::Block(new_target);
        true
    }

    /// Insert a fresh predicated branch (on a register some instruction in
    /// the function defines, so predicate-def checking stays satisfiable)
    /// from one existing block to another, ahead of the existing exits.
    pub fn insert_branch(f: &mut Function, rng: &mut SplitMix64) -> bool {
        let ids: Vec<BlockId> = f.block_ids().collect();
        let defined: Vec<Reg> = ids
            .iter()
            .flat_map(|b| f.block(*b).insts.iter().filter_map(|i| i.dst))
            .collect();
        let (Some(from), Some(to)) = (pick(&ids, rng), pick(&ids, rng)) else {
            return false;
        };
        let reg = if defined.is_empty() {
            if f.params == 0 {
                return false;
            }
            Reg(rng.below(f.params as u64) as u32)
        } else {
            defined[rng.below(defined.len() as u64) as usize]
        };
        let pred = Pred {
            reg,
            if_true: rng.chance(50),
        };
        f.block_mut(from).exits.insert(0, Exit::when(pred, to));
        true
    }

    /// Splice up to eight instructions from a donor function's block into a
    /// block of `f`, remapping registers into `f`'s register space and
    /// stripping predicates (the donor's predicate defs don't travel).
    pub fn splice(f: &mut Function, donor: &Function, rng: &mut SplitMix64) -> bool {
        let donor_ids: Vec<BlockId> = donor.block_ids().collect();
        let ids: Vec<BlockId> = f.block_ids().collect();
        let (Some(src), Some(dst)) = (pick(&donor_ids, rng), pick(&ids, rng)) else {
            return false;
        };
        let regs = f.reg_count().max(1);
        let take = (1 + rng.below(8)) as usize;
        let spliced: Vec<_> = donor
            .block(src)
            .insts
            .iter()
            .take(take)
            .map(|inst| {
                let mut i = inst.clone();
                i.pred = None;
                let remap = |r: Reg| Reg(r.0 % regs);
                i.dst = i.dst.map(remap);
                let remap_op = |o: crate::instr::Operand| match o {
                    crate::instr::Operand::Reg(r) => crate::instr::Operand::Reg(remap(r)),
                    imm => imm,
                };
                i.a = i.a.map(remap_op);
                i.b = i.b.map(remap_op);
                i
            })
            .collect();
        if spliced.is_empty() {
            return false;
        }
        let blk = f.block_mut(dst);
        let at = rng.below(blk.insts.len() as u64 + 1) as usize;
        blk.insts.splice(at..at, spliced);
        true
    }

    /// Rescale a seeded subset of edge and block counts by extreme factors
    /// — the adversarial-training-data shape the profile-guided orderings
    /// consume. The IR is untouched.
    pub fn perturb_profile(p: &mut ProfileData, rng: &mut SplitMix64) -> bool {
        let mut changed = false;
        let mut edges: Vec<(BlockId, usize)> = p.exit_counts.keys().copied().collect();
        edges.sort_unstable();
        for k in edges {
            if rng.chance(40) {
                let n = p.exit_counts.get_mut(&k).expect("key from iteration");
                *n = match rng.below(3) {
                    0 => 0,
                    1 => n.saturating_mul(1 + rng.below(1_000_000)),
                    _ => *n / (1 + rng.below(1_000)),
                };
                changed = true;
            }
        }
        let mut blocks: Vec<BlockId> = p.block_counts.keys().copied().collect();
        blocks.sort_unstable();
        for b in blocks {
            if rng.chance(25) {
                let n = p.block_counts.get_mut(&b).expect("key from iteration");
                *n = n.saturating_mul(1 + rng.below(10_000));
                changed = true;
            }
        }
        changed
    }
}

/// The coverage dimensions the corpus fuzzer tracks. Every dimension is a
/// small label over a 64-bit cell key; what the key *means* is the
/// caller's contract (the corpus crate hashes merge-outcome buckets, shape
/// fingerprints, fault classifications, and oracle verdicts into it).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CoverageCategory {
    /// Bucketed committed-transformation counts (`m/t/u/p`).
    MergeOutcome,
    /// CFG-shape fingerprint ([`crate::fingerprint::CfgShape`]).
    Shape,
    /// Chaos fault classification (kind × outcome).
    Fault,
    /// Differential-oracle verdict.
    OracleVerdict,
}

impl CoverageCategory {
    /// Every category, in reporting order.
    pub const ALL: [CoverageCategory; 4] = [
        CoverageCategory::MergeOutcome,
        CoverageCategory::Shape,
        CoverageCategory::Fault,
        CoverageCategory::OracleVerdict,
    ];

    /// Stable key for JSON summaries.
    pub fn label(self) -> &'static str {
        match self {
            CoverageCategory::MergeOutcome => "outcome",
            CoverageCategory::Shape => "shape",
            CoverageCategory::Fault => "fault",
            CoverageCategory::OracleVerdict => "verdict",
        }
    }
}

impl fmt::Display for CoverageCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic set of covered `(category, cell)` pairs.
///
/// Backed by a `BTreeSet` so iteration, counts, and the derived JSON are
/// byte-stable regardless of insertion order — the corpus replay fills the
/// map in parallel and the summary must not depend on worker count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoverageMap {
    cells: BTreeSet<(CoverageCategory, u64)>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Record a cell; `true` when it was not already covered.
    pub fn insert(&mut self, category: CoverageCategory, cell: u64) -> bool {
        self.cells.insert((category, cell))
    }

    /// Whether a cell is covered.
    pub fn contains(&self, category: CoverageCategory, cell: u64) -> bool {
        self.cells.contains(&(category, cell))
    }

    /// Total covered cells across all categories.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether nothing is covered yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Covered cells in one category.
    pub fn count(&self, category: CoverageCategory) -> usize {
        self.cells.iter().filter(|(c, _)| *c == category).count()
    }

    /// Absorb another map; returns how many of `other`'s cells were new.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let before = self.cells.len();
        self.cells.extend(other.cells.iter().copied());
        self.cells.len() - before
    }

    /// Per-category counts as a stable JSON fragment, e.g.
    /// `"outcome":12,"shape":9,"fault":31,"verdict":2`.
    pub fn json_counts(&self) -> String {
        CoverageCategory::ALL
            .iter()
            .map(|c| format!("\"{}\":{}", c.label(), self.count(*c)))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify;

    #[test]
    fn deterministic_in_seed() {
        let cfg = GenConfig::default();
        let a = generate(42, &cfg);
        let b = generate(42, &cfg);
        assert_eq!(a.to_string(), b.to_string());
        let c = generate(43, &cfg);
        assert_ne!(a.to_string(), c.to_string());
    }

    #[test]
    fn generated_programs_verify() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let f = generate(seed, &cfg);
            assert_eq!(verify(&f), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn generates_interesting_shapes() {
        let cfg = GenConfig {
            max_depth: 3,
            max_stmts: 8,
            ..GenConfig::default()
        };
        let mut saw_multi_block = false;
        let mut saw_loop = false;
        for seed in 0..30 {
            let f = generate(seed, &cfg);
            if f.block_count() > 3 {
                saw_multi_block = true;
            }
            if !crate::loops::LoopForest::of(&f).loops.is_empty() {
                saw_loop = true;
            }
        }
        assert!(saw_multi_block);
        assert!(saw_loop);
    }

    #[test]
    fn plan_describe_round_trips() {
        let mut rng = SplitMix64::new(11);
        let mut plan = GenPlan::new(7);
        for _ in 0..20 {
            plan = plan.mutate(&mut rng);
            let text = plan.describe();
            assert_eq!(GenPlan::from_describe(&text), Some(plan.clone()), "{text}");
        }
        assert_eq!(GenPlan::from_describe("seed=1 bogus=2"), None);
        assert_eq!(GenPlan::from_describe("seed"), None);
    }

    #[test]
    fn plan_mutation_changes_the_program() {
        let mut rng = SplitMix64::new(3);
        let base = GenPlan::new(5);
        let mutant = base.mutate(&mut rng);
        assert_ne!(base.generate().to_string(), mutant.generate().to_string());
    }

    #[test]
    fn cfg_mutators_change_programs_and_stay_parseable() {
        let cfg = GenConfig::default();
        let donor = generate(99, &cfg);
        let mut changed = [0usize; 3];
        for seed in 0..24u64 {
            let mut rng = SplitMix64::new(seed);
            let mut f = generate(seed, &cfg);
            let before = f.to_string();
            let did = match seed % 3 {
                0 => mutate::retarget_branch(&mut f, &mut rng),
                1 => mutate::insert_branch(&mut f, &mut rng),
                _ => mutate::splice(&mut f, &donor, &mut rng),
            };
            if did {
                changed[(seed % 3) as usize] += 1;
                assert_ne!(f.to_string(), before, "seed {seed} claimed a change");
                // Mutants must stay structurally sound enough to print and
                // reparse — the corpus stores them as `.til` text.
                assert_eq!(crate::verify::verify(&f), Ok(()), "seed {seed}:\n{f}");
                crate::parse::parse_function(&f.to_string()).expect("mutant must reparse");
            }
        }
        assert!(changed.iter().all(|&n| n > 0), "every operator must fire");
    }

    #[test]
    fn profile_perturbation_is_seed_deterministic() {
        use crate::profile::ProfileData;
        let f = generate(4, &GenConfig::default());
        let mut p = ProfileData::default();
        for id in f.block_ids() {
            p.block_counts.insert(id, 10);
            p.exit_counts.insert((id, 0), 5);
        }
        let (mut a, mut b) = (p.clone(), p.clone());
        assert!(mutate::perturb_profile(&mut a, &mut SplitMix64::new(8)));
        assert!(mutate::perturb_profile(&mut b, &mut SplitMix64::new(8)));
        assert_eq!(a.block_counts, b.block_counts);
        assert_eq!(a.exit_counts, b.exit_counts);
    }

    #[test]
    fn coverage_map_counts_and_merges() {
        let mut m = CoverageMap::new();
        assert!(m.insert(CoverageCategory::Shape, 1));
        assert!(!m.insert(CoverageCategory::Shape, 1));
        assert!(m.insert(CoverageCategory::Fault, 1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.count(CoverageCategory::Shape), 1);
        let mut other = CoverageMap::new();
        other.insert(CoverageCategory::Shape, 1);
        other.insert(CoverageCategory::OracleVerdict, 9);
        assert_eq!(m.merge(&other), 1);
        assert_eq!(
            m.json_counts(),
            "\"outcome\":0,\"shape\":1,\"fault\":1,\"verdict\":1"
        );
    }
}
