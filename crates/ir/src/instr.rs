//! Instructions, operands, and predicates.

use crate::ids::Reg;
use std::fmt;

/// Operation performed by an [`Instr`].
///
/// The set mirrors the RISC-like form the Scale compiler lowers to before
/// hyperblock formation: integer ALU operations, comparisons that produce a
/// 0/1 predicate value, moves, and memory accesses.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// `dst = a + b`
    Add,
    /// `dst = a - b`
    Sub,
    /// `dst = a * b`
    Mul,
    /// `dst = a / b` (wrapping; division by zero yields 0, like saturating
    /// hardware semantics — keeps the interpreter total)
    Div,
    /// `dst = a % b` (remainder; modulo-by-zero yields 0)
    Rem,
    /// `dst = a & b`
    And,
    /// `dst = a | b`
    Or,
    /// `dst = a ^ b`
    Xor,
    /// `dst = a << (b & 63)`
    Shl,
    /// `dst = a >> (b & 63)` (arithmetic)
    Shr,
    /// `dst = !a` (bitwise not)
    Not,
    /// `dst = -a`
    Neg,
    /// `dst = a`
    Mov,
    /// `dst = (a == b) as i64`
    CmpEq,
    /// `dst = (a != b) as i64`
    CmpNe,
    /// `dst = (a < b) as i64`
    CmpLt,
    /// `dst = (a <= b) as i64`
    CmpLe,
    /// `dst = (a > b) as i64`
    CmpGt,
    /// `dst = (a >= b) as i64`
    CmpGe,
    /// `dst = mem[a]`
    Load,
    /// `mem[a] = b`
    Store,
}

impl Opcode {
    /// Number of source operands this opcode consumes.
    pub fn arity(self) -> usize {
        match self {
            Opcode::Not | Opcode::Neg | Opcode::Mov | Opcode::Load => 1,
            _ => 2,
        }
    }

    /// Whether the opcode writes a destination register.
    pub fn has_dst(self) -> bool {
        !matches!(self, Opcode::Store)
    }

    /// Whether this is a memory access.
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether this is a comparison producing a 0/1 value.
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            Opcode::CmpEq
                | Opcode::CmpNe
                | Opcode::CmpLt
                | Opcode::CmpLe
                | Opcode::CmpGt
                | Opcode::CmpGe
        )
    }

    /// Whether the operation is commutative in its two operands.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::CmpEq
                | Opcode::CmpNe
        )
    }

    /// Execution latency in cycles charged by the timing simulator.
    pub fn latency(self) -> u64 {
        match self {
            Opcode::Mul => 3,
            Opcode::Div | Opcode::Rem => 12,
            Opcode::Load => 3,
            Opcode::Store => 1,
            _ => 1,
        }
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Rem => "rem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Not => "not",
            Opcode::Neg => "neg",
            Opcode::Mov => "mov",
            Opcode::CmpEq => "eq",
            Opcode::CmpNe => "ne",
            Opcode::CmpLt => "lt",
            Opcode::CmpLe => "le",
            Opcode::CmpGt => "gt",
            Opcode::CmpGe => "ge",
            Opcode::Load => "load",
            Opcode::Store => "store",
        }
    }
}

/// A source operand: either a register or an immediate constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(Reg),
    /// An immediate 64-bit constant.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is a register.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The constant, if this operand is an immediate.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            Operand::Reg(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// A predicate guard: instruction executes only when `reg`'s truth value
/// (non-zero) matches `if_true`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Pred {
    /// Register holding the predicate value.
    pub reg: Reg,
    /// `true` = execute when the register is non-zero; `false` = when zero.
    pub if_true: bool,
}

impl Pred {
    /// Predicate that fires when `reg` is true (non-zero).
    pub fn on_true(reg: Reg) -> Self {
        Pred { reg, if_true: true }
    }

    /// Predicate that fires when `reg` is false (zero).
    pub fn on_false(reg: Reg) -> Self {
        Pred {
            reg,
            if_true: false,
        }
    }

    /// The complementary predicate (same register, opposite polarity).
    pub fn negate(self) -> Self {
        Pred {
            reg: self.reg,
            if_true: !self.if_true,
        }
    }

    /// Whether `self` and `other` can never both be true.
    ///
    /// Only syntactic complements are recognized; this is conservative.
    pub fn is_complement_of(self, other: Pred) -> bool {
        self.reg == other.reg && self.if_true != other.if_true
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.if_true {
            write!(f, "[{}]", self.reg)
        } else {
            write!(f, "[!{}]", self.reg)
        }
    }
}

/// A single (optionally predicated) instruction.
///
/// Use the named constructors ([`Instr::add`], [`Instr::load`], …) rather
/// than building the struct directly; they enforce operand arity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// The operation.
    pub op: Opcode,
    /// Destination register, for opcodes that produce a value.
    pub dst: Option<Reg>,
    /// First source operand.
    pub a: Option<Operand>,
    /// Second source operand.
    pub b: Option<Operand>,
    /// Optional predicate guard.
    pub pred: Option<Pred>,
}

impl Instr {
    /// Generic binary-operation constructor.
    ///
    /// # Panics
    /// Panics if `op` is not a two-operand register-writing opcode.
    pub fn binary(op: Opcode, dst: Reg, a: Operand, b: Operand) -> Self {
        assert!(op.arity() == 2 && op.has_dst(), "not a binary op: {op:?}");
        Instr {
            op,
            dst: Some(dst),
            a: Some(a),
            b: Some(b),
            pred: None,
        }
    }

    /// Generic unary-operation constructor.
    ///
    /// # Panics
    /// Panics if `op` is not a one-operand register-writing opcode.
    pub fn unary(op: Opcode, dst: Reg, a: Operand) -> Self {
        assert!(op.arity() == 1 && op.has_dst(), "not a unary op: {op:?}");
        Instr {
            op,
            dst: Some(dst),
            a: Some(a),
            b: None,
            pred: None,
        }
    }

    /// `dst = a + b`
    pub fn add(dst: Reg, a: Operand, b: Operand) -> Self {
        Self::binary(Opcode::Add, dst, a, b)
    }

    /// `dst = a - b`
    pub fn sub(dst: Reg, a: Operand, b: Operand) -> Self {
        Self::binary(Opcode::Sub, dst, a, b)
    }

    /// `dst = a * b`
    pub fn mul(dst: Reg, a: Operand, b: Operand) -> Self {
        Self::binary(Opcode::Mul, dst, a, b)
    }

    /// `dst = a` (register copy or constant materialization)
    pub fn mov(dst: Reg, a: Operand) -> Self {
        Self::unary(Opcode::Mov, dst, a)
    }

    /// `dst = mem[addr]`
    pub fn load(dst: Reg, addr: Operand) -> Self {
        Self::unary(Opcode::Load, dst, addr)
    }

    /// `mem[addr] = value`
    pub fn store(addr: Operand, value: Operand) -> Self {
        Instr {
            op: Opcode::Store,
            dst: None,
            a: Some(addr),
            b: Some(value),
            pred: None,
        }
    }

    /// Attach a predicate guard, returning the modified instruction.
    pub fn predicated(mut self, pred: Pred) -> Self {
        self.pred = Some(pred);
        self
    }

    /// Registers read by this instruction, including the predicate register.
    pub fn uses(&self) -> impl Iterator<Item = Reg> + '_ {
        self.a
            .iter()
            .chain(self.b.iter())
            .filter_map(|o| o.as_reg())
            .chain(self.pred.iter().map(|p| p.reg))
    }

    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        self.dst
    }

    /// Whether this instruction has an observable side effect (memory write).
    pub fn has_side_effect(&self) -> bool {
        matches!(self.op, Opcode::Store)
    }

    /// Rewrite every register mentioned by this instruction through `map`.
    pub fn remap_regs(&mut self, mut map: impl FnMut(Reg) -> Reg) {
        if let Some(dst) = self.dst.as_mut() {
            *dst = map(*dst);
        }
        for o in [self.a.as_mut(), self.b.as_mut()].into_iter().flatten() {
            if let Operand::Reg(r) = o {
                *r = map(*r);
            }
        }
        if let Some(p) = self.pred.as_mut() {
            p.reg = map(p.reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> Reg {
        Reg(i)
    }

    #[test]
    fn constructors_enforce_arity() {
        let i = Instr::add(r(2), Operand::Reg(r(0)), Operand::Imm(3));
        assert_eq!(i.op, Opcode::Add);
        assert_eq!(i.def(), Some(r(2)));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![r(0)]);
    }

    #[test]
    #[should_panic(expected = "not a binary op")]
    fn binary_rejects_unary_opcode() {
        let _ = Instr::binary(Opcode::Mov, r(0), Operand::Imm(1), Operand::Imm(2));
    }

    #[test]
    fn store_has_no_dst_and_side_effect() {
        let s = Instr::store(Operand::Reg(r(1)), Operand::Reg(r(2)));
        assert!(s.def().is_none());
        assert!(s.has_side_effect());
        let uses: Vec<_> = s.uses().collect();
        assert_eq!(uses, vec![r(1), r(2)]);
    }

    #[test]
    fn predicate_counts_as_use() {
        let i = Instr::mov(r(3), Operand::Imm(1)).predicated(Pred::on_true(r(9)));
        assert!(i.uses().any(|u| u == r(9)));
    }

    #[test]
    fn pred_negation_and_complement() {
        let p = Pred::on_true(r(1));
        let n = p.negate();
        assert!(p.is_complement_of(n));
        assert!(!p.is_complement_of(p));
        assert!(!p.is_complement_of(Pred::on_false(r(2))));
    }

    #[test]
    fn remap_regs_touches_all_positions() {
        let mut i = Instr::add(r(1), Operand::Reg(r(2)), Operand::Reg(r(3)))
            .predicated(Pred::on_false(r(4)));
        i.remap_regs(|x| Reg(x.0 + 10));
        assert_eq!(i.dst, Some(r(11)));
        assert_eq!(i.a, Some(Operand::Reg(r(12))));
        assert_eq!(i.b, Some(Operand::Reg(r(13))));
        assert_eq!(i.pred.unwrap().reg, r(14));
    }

    #[test]
    fn opcode_properties() {
        assert!(Opcode::Add.is_commutative());
        assert!(!Opcode::Sub.is_commutative());
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::CmpLt.is_compare());
        assert_eq!(Opcode::Mul.latency(), 3);
        assert_eq!(Opcode::Load.arity(), 1);
        assert!(!Opcode::Store.has_dst());
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg(5).into();
        assert_eq!(o.as_reg(), Some(Reg(5)));
        let o: Operand = 42i64.into();
        assert_eq!(o.as_imm(), Some(42));
        assert_eq!(o.as_reg(), None);
    }
}
