#![warn(missing_docs)]
//! # chf-ir — predicated RISC-like IR for hyperblock formation
//!
//! This crate provides the intermediate representation consumed by the
//! convergent hyperblock formation algorithm of Maher et al. (MICRO 2006),
//! together with the CFG analyses the algorithm depends on: dominators,
//! natural loops, liveness, and edge/trip-count profiles.
//!
//! The representation is deliberately close to the RISC-like form the Scale
//! compiler lowers to before hyperblock formation (paper §6):
//!
//! * A [`Function`] is a set of [`Block`]s with a distinguished entry.
//! * A [`Block`] is a list of (optionally predicated) [`Instr`]s followed by
//!   a list of [`Exit`]s, each of which may also be predicated. A *basic*
//!   block is simply a block with no predication; a *hyperblock* is the same
//!   structure after if-conversion has folded several basic blocks into one.
//! * Predicates are ordinary registers produced by comparison instructions;
//!   an instruction guarded by `[p]`/`[!p]` executes only when the predicate
//!   register holds a true/false value, matching TRIPS dataflow predication.
//!
//! Every instruction has executable semantics (see `chf-sim`), so every
//! transformation in the compiler can be validated by running the program
//! before and after and comparing observable behaviour.
//!
//! ## Example
//!
//! ```
//! use chf_ir::builder::FunctionBuilder;
//! use chf_ir::instr::Operand;
//!
//! // r0 is the parameter; compute r0 * 2 + 1 and return it.
//! let mut b = FunctionBuilder::new("double_plus_one", 1);
//! let entry = b.create_block();
//! b.switch_to(entry);
//! let p = b.param(0);
//! let twice = b.add(Operand::Reg(p), Operand::Reg(p));
//! let out = b.add(Operand::Reg(twice), Operand::Imm(1));
//! b.ret(Some(Operand::Reg(out)));
//! let f = b.build().unwrap();
//! assert_eq!(f.block_ids().count(), 1);
//! ```

pub mod block;
pub mod builder;
pub mod cfg;
pub mod dom;
pub mod fingerprint;
pub mod function;
pub mod fxhash;
pub mod ids;
pub mod instr;
pub mod liveness;
pub mod loops;
pub mod parse;
pub mod print;
pub mod profile;
pub mod stats;
pub mod testgen;
pub mod verify;

pub use block::{Block, Exit, ExitTarget};
pub use builder::FunctionBuilder;
pub use dom::DomTree;
pub use fingerprint::{shape_fingerprint, CfgShape};
pub use function::Function;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{BlockId, Reg};
pub use instr::{Instr, Opcode, Operand, Pred};
pub use loops::{Loop, LoopForest};
pub use parse::{parse_function, ParseError};
pub use profile::{ProfileData, TripHistogram};
pub use stats::FunctionStats;
pub use verify::{verify, verify_full, VerifyError};
