//! Structural IR verifier.
//!
//! Run after every transformation in debug builds and throughout the test
//! suite. Catches dangling edges, malformed exit sets, and register-space
//! violations — the classes of bugs CFG surgery (tail/head duplication) is
//! most prone to.

use crate::block::ExitTarget;
use crate::function::Function;
use crate::ids::BlockId;
use std::fmt;

/// A structural invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A block has no exits at all.
    NoExits(BlockId),
    /// The final exit of a block is predicated, so the exit set may not be
    /// total.
    NoDefaultExit(BlockId),
    /// A predicated exit appears after the unpredicated default.
    ExitAfterDefault(BlockId),
    /// An exit targets a removed or never-created block.
    DanglingEdge(BlockId, BlockId),
    /// An instruction or exit references a register beyond the function's
    /// allocated register space.
    RegisterOutOfRange(BlockId, u32),
    /// The entry block has been removed.
    MissingEntry,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NoExits(b) => write!(f, "block {b} has no exits"),
            VerifyError::NoDefaultExit(b) => {
                write!(f, "block {b} has no unpredicated default exit")
            }
            VerifyError::ExitAfterDefault(b) => {
                write!(f, "block {b} has exits after the default exit")
            }
            VerifyError::DanglingEdge(b, t) => {
                write!(f, "block {b} targets nonexistent block {t}")
            }
            VerifyError::RegisterOutOfRange(b, r) => {
                write!(f, "block {b} references unallocated register r{r}")
            }
            VerifyError::MissingEntry => write!(f, "entry block does not exist"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Check all structural invariants of `f`.
///
/// # Errors
/// Returns the first violation found, in block-id order.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    if !f.contains_block(f.entry) {
        return Err(VerifyError::MissingEntry);
    }
    let nregs = f.reg_count();
    for (id, blk) in f.blocks() {
        if blk.exits.is_empty() {
            return Err(VerifyError::NoExits(id));
        }
        let last = blk.exits.len() - 1;
        if blk.exits[last].pred.is_some() {
            return Err(VerifyError::NoDefaultExit(id));
        }
        for (i, e) in blk.exits.iter().enumerate() {
            if e.pred.is_none() && i != last {
                return Err(VerifyError::ExitAfterDefault(id));
            }
            if let ExitTarget::Block(t) = e.target {
                if !f.contains_block(t) {
                    return Err(VerifyError::DanglingEdge(id, t));
                }
            }
            if let Some(p) = e.pred {
                if p.reg.0 >= nregs {
                    return Err(VerifyError::RegisterOutOfRange(id, p.reg.0));
                }
            }
            if let ExitTarget::Return(Some(op)) = e.target {
                if let Some(r) = op.as_reg() {
                    if r.0 >= nregs {
                        return Err(VerifyError::RegisterOutOfRange(id, r.0));
                    }
                }
            }
        }
        for inst in &blk.insts {
            for r in inst.uses().chain(inst.def()) {
                if r.0 >= nregs {
                    return Err(VerifyError::RegisterOutOfRange(id, r.0));
                }
            }
        }
    }
    Ok(())
}

/// Panic with a readable message if `f` fails verification. Intended for
/// `debug_assert!`-style use inside transformation passes.
///
/// # Panics
/// Panics if verification fails.
#[track_caller]
pub fn assert_valid(f: &Function, context: &str) {
    if let Err(e) = verify(f) {
        panic!("IR verification failed after {context}: {e}\n{f}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, Exit};
    use crate::builder::FunctionBuilder;
    use crate::ids::Reg;
    use crate::instr::{Instr, Operand, Pred};

    fn valid_fn() -> Function {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        fb.jump(x);
        fb.switch_to(x);
        fb.ret(Some(Operand::Reg(fb.param(0))));
        fb.build_unverified()
    }

    #[test]
    fn accepts_valid_function() {
        assert_eq!(verify(&valid_fn()), Ok(()));
    }

    #[test]
    fn rejects_empty_exits() {
        let mut f = valid_fn();
        let b = f.add_block(Block::new());
        // make reachable not required by verifier; unreachable blocks are
        // still checked
        assert_eq!(verify(&f), Err(VerifyError::NoExits(b)));
    }

    #[test]
    fn rejects_missing_default() {
        let mut f = valid_fn();
        let e = f.entry;
        let t = f.block(e).exits[0].target;
        f.block_mut(e).exits[0] = Exit {
            pred: Some(Pred::on_true(Reg(0))),
            target: t,
            count: 0.0,
        };
        assert_eq!(verify(&f), Err(VerifyError::NoDefaultExit(e)));
    }

    #[test]
    fn rejects_exit_after_default() {
        let mut f = valid_fn();
        let e = f.entry;
        let existing = f.block(e).exits[0];
        f.block_mut(e).exits.push(existing);
        assert_eq!(verify(&f), Err(VerifyError::ExitAfterDefault(e)));
    }

    #[test]
    fn rejects_dangling_edge() {
        let mut f = valid_fn();
        let ghost = BlockId(99);
        f.block_mut(f.entry).retarget_exits(BlockId(1), ghost);
        let entry = f.entry;
        assert_eq!(verify(&f), Err(VerifyError::DanglingEdge(entry, ghost)));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut f = valid_fn();
        let entry = f.entry;
        f.block_mut(entry)
            .insts
            .push(Instr::mov(Reg(500), Operand::Imm(1)));
        assert_eq!(
            verify(&f),
            Err(VerifyError::RegisterOutOfRange(entry, 500))
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::DanglingEdge(BlockId(1), BlockId(9));
        assert!(e.to_string().contains("B1"));
        assert!(e.to_string().contains("B9"));
    }
}
