//! Structural IR verifier.
//!
//! Run after every transformation in debug builds and throughout the test
//! suite. Catches dangling edges, malformed exit sets, and register-space
//! violations — the classes of bugs CFG surgery (tail/head duplication) is
//! most prone to.

use crate::block::ExitTarget;
use crate::function::Function;
use crate::ids::BlockId;
use std::fmt;

/// A structural invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A block has no exits at all.
    NoExits(BlockId),
    /// The final exit of a block is predicated, so the exit set may not be
    /// total.
    NoDefaultExit(BlockId),
    /// A predicated exit appears after the unpredicated default.
    ExitAfterDefault(BlockId),
    /// An exit targets a removed or never-created block.
    DanglingEdge(BlockId, BlockId),
    /// An instruction or exit references a register beyond the function's
    /// allocated register space.
    RegisterOutOfRange(BlockId, u32),
    /// The entry block has been removed.
    MissingEntry,
    /// A block is not reachable from the entry (only reported by
    /// [`verify_full`]; mid-formation IR legitimately carries unreachable
    /// blocks until the final `remove_unreachable` sweep).
    UnreachableBlock(BlockId),
    /// A predicate register is consumed (by a predicated instruction or
    /// exit) before any definition: it is not a parameter, is not defined
    /// earlier in the same block, and has no definition in any other block.
    /// Only reported by [`verify_full`].
    PredicateUseBeforeDef(BlockId, u32),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NoExits(b) => write!(f, "block {b} has no exits"),
            VerifyError::NoDefaultExit(b) => {
                write!(f, "block {b} has no unpredicated default exit")
            }
            VerifyError::ExitAfterDefault(b) => {
                write!(f, "block {b} has exits after the default exit")
            }
            VerifyError::DanglingEdge(b, t) => {
                write!(f, "block {b} targets nonexistent block {t}")
            }
            VerifyError::RegisterOutOfRange(b, r) => {
                write!(f, "block {b} references unallocated register r{r}")
            }
            VerifyError::MissingEntry => write!(f, "entry block does not exist"),
            VerifyError::UnreachableBlock(b) => {
                write!(f, "block {b} is unreachable from the entry")
            }
            VerifyError::PredicateUseBeforeDef(b, r) => {
                write!(
                    f,
                    "block {b} consumes predicate register r{r} before any definition"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Check all structural invariants of `f`.
///
/// # Errors
/// Returns the first violation found, in block-id order.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    if !f.contains_block(f.entry) {
        return Err(VerifyError::MissingEntry);
    }
    let nregs = f.reg_count();
    for (id, blk) in f.blocks() {
        if blk.exits.is_empty() {
            return Err(VerifyError::NoExits(id));
        }
        let last = blk.exits.len() - 1;
        if blk.exits[last].pred.is_some() {
            return Err(VerifyError::NoDefaultExit(id));
        }
        for (i, e) in blk.exits.iter().enumerate() {
            if e.pred.is_none() && i != last {
                return Err(VerifyError::ExitAfterDefault(id));
            }
            if let ExitTarget::Block(t) = e.target {
                if !f.contains_block(t) {
                    return Err(VerifyError::DanglingEdge(id, t));
                }
            }
            if let Some(p) = e.pred {
                if p.reg.0 >= nregs {
                    return Err(VerifyError::RegisterOutOfRange(id, p.reg.0));
                }
            }
            if let ExitTarget::Return(Some(op)) = e.target {
                if let Some(r) = op.as_reg() {
                    if r.0 >= nregs {
                        return Err(VerifyError::RegisterOutOfRange(id, r.0));
                    }
                }
            }
        }
        for inst in &blk.insts {
            for r in inst.uses().chain(inst.def()) {
                if r.0 >= nregs {
                    return Err(VerifyError::RegisterOutOfRange(id, r.0));
                }
            }
        }
    }
    Ok(())
}

/// Check all structural invariants plus the whole-function properties that
/// only hold on *finished* IR: every block reachable from the entry, and
/// every predicate register defined before use.
///
/// Mid-formation IR is exempt from both — merging legitimately strands the
/// merged successor until the final `remove_unreachable` sweep — so
/// transformation passes assert [`verify`] while the chaos campaign, the
/// differential oracle, and end-of-pipeline checks assert `verify_full`.
///
/// # Errors
/// Returns the first violation found: structural errors first (in block-id
/// order), then unreachable blocks, then predicate use-before-def.
pub fn verify_full(f: &Function) -> Result<(), VerifyError> {
    verify(f)?;
    let live = crate::cfg::reachable(f);
    for id in f.block_ids() {
        if !live.contains(&id) {
            return Err(VerifyError::UnreachableBlock(id));
        }
    }
    // A predicate register use is flagged only when no definition can
    // possibly precede it: it is not a parameter, no earlier instruction in
    // the same block defines it, and no other block defines it at all (a def
    // in another block might dominate the use; the structural verifier does
    // not do full dataflow, so cross-block defs get the benefit of the
    // doubt — as does an in-block def from a previous loop iteration when
    // the register is also defined elsewhere).
    for (id, blk) in f.blocks() {
        let mut defined_here: Vec<u32> = Vec::new();
        let check = |reg: u32, defined_here: &[u32]| -> Result<(), VerifyError> {
            if reg < f.params || defined_here.contains(&reg) || defined_in_other_block(f, id, reg) {
                Ok(())
            } else {
                Err(VerifyError::PredicateUseBeforeDef(id, reg))
            }
        };
        for inst in &blk.insts {
            if let Some(p) = inst.pred {
                check(p.reg.0, &defined_here)?;
            }
            if let Some(d) = inst.def() {
                defined_here.push(d.0);
            }
        }
        for e in &blk.exits {
            if let Some(p) = e.pred {
                check(p.reg.0, &defined_here)?;
            }
        }
    }
    Ok(())
}

/// Does `reg` have a definition in any block other than `excluded`?
fn defined_in_other_block(f: &Function, excluded: BlockId, reg: u32) -> bool {
    f.blocks().any(|(id, blk)| {
        id != excluded
            && blk
                .insts
                .iter()
                .any(|i| i.def().is_some_and(|r| r.0 == reg))
    })
}

/// Panic with a readable message if `f` fails verification. Intended for
/// `debug_assert!`-style use inside transformation passes.
///
/// # Panics
/// Panics if verification fails.
#[track_caller]
pub fn assert_valid(f: &Function, context: &str) {
    if let Err(e) = verify(f) {
        panic!("IR verification failed after {context}: {e}\n{f}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, Exit};
    use crate::builder::FunctionBuilder;
    use crate::ids::Reg;
    use crate::instr::{Instr, Operand, Pred};

    fn valid_fn() -> Function {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        fb.jump(x);
        fb.switch_to(x);
        fb.ret(Some(Operand::Reg(fb.param(0))));
        fb.build_unverified()
    }

    #[test]
    fn accepts_valid_function() {
        assert_eq!(verify(&valid_fn()), Ok(()));
    }

    #[test]
    fn rejects_empty_exits() {
        let mut f = valid_fn();
        let b = f.add_block(Block::new());
        // make reachable not required by verifier; unreachable blocks are
        // still checked
        assert_eq!(verify(&f), Err(VerifyError::NoExits(b)));
    }

    #[test]
    fn rejects_missing_default() {
        let mut f = valid_fn();
        let e = f.entry;
        let t = f.block(e).exits[0].target;
        f.block_mut(e).exits[0] = Exit {
            pred: Some(Pred::on_true(Reg(0))),
            target: t,
            count: 0.0,
        };
        assert_eq!(verify(&f), Err(VerifyError::NoDefaultExit(e)));
    }

    #[test]
    fn rejects_exit_after_default() {
        let mut f = valid_fn();
        let e = f.entry;
        let existing = f.block(e).exits[0];
        f.block_mut(e).exits.push(existing);
        assert_eq!(verify(&f), Err(VerifyError::ExitAfterDefault(e)));
    }

    #[test]
    fn rejects_dangling_edge() {
        let mut f = valid_fn();
        let ghost = BlockId(99);
        f.block_mut(f.entry).retarget_exits(BlockId(1), ghost);
        let entry = f.entry;
        assert_eq!(verify(&f), Err(VerifyError::DanglingEdge(entry, ghost)));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut f = valid_fn();
        let entry = f.entry;
        f.block_mut(entry)
            .insts
            .push(Instr::mov(Reg(500), Operand::Imm(1)));
        assert_eq!(verify(&f), Err(VerifyError::RegisterOutOfRange(entry, 500)));
    }

    #[test]
    fn rejects_missing_entry() {
        let mut f = valid_fn();
        // `remove_block` refuses to drop the entry, so simulate the
        // corruption directly: point the entry at a never-created slot.
        f.entry = BlockId(99);
        assert_eq!(verify(&f), Err(VerifyError::MissingEntry));
    }

    #[test]
    fn rejects_predicated_return_register_out_of_range() {
        let mut f = valid_fn();
        let e = f.entry;
        let t = f.block(e).exits[0].target;
        f.block_mut(e).exits.insert(
            0,
            Exit {
                pred: Some(Pred::on_true(Reg(700))),
                target: t,
                count: 0.0,
            },
        );
        assert_eq!(verify(&f), Err(VerifyError::RegisterOutOfRange(e, 700)));
    }

    #[test]
    fn full_accepts_valid_function() {
        assert_eq!(verify_full(&valid_fn()), Ok(()));
    }

    #[test]
    fn full_rejects_unreachable_block() {
        let mut f = valid_fn();
        // A structurally well-formed block (has a default exit) that nothing
        // jumps to: plain verify accepts it, verify_full does not.
        let mut blk = Block::new();
        blk.exits.push(Exit {
            pred: None,
            target: ExitTarget::Return(None),
            count: 0.0,
        });
        let b = f.add_block(blk);
        assert_eq!(verify(&f), Ok(()));
        assert_eq!(verify_full(&f), Err(VerifyError::UnreachableBlock(b)));
    }

    #[test]
    fn full_rejects_predicate_use_before_def() {
        let mut f = valid_fn();
        let e = f.entry;
        // Predicate the entry's jump on a register that is neither a
        // parameter nor defined anywhere; append a default so the exit set
        // stays total.
        let t = f.block(e).exits[0].target;
        let ghost = f.new_reg();
        f.block_mut(e).exits.insert(
            0,
            Exit {
                pred: Some(Pred::on_true(ghost)),
                target: t,
                count: 0.0,
            },
        );
        assert_eq!(verify(&f), Ok(()));
        assert_eq!(
            verify_full(&f),
            Err(VerifyError::PredicateUseBeforeDef(e, ghost.0))
        );
    }

    #[test]
    fn full_rejects_predicated_inst_before_def() {
        let mut f = valid_fn();
        let e = f.entry;
        let p = f.new_reg();
        let dst = f.new_reg();
        // use p (predicated mov) before its only def, with no def elsewhere
        let mut guarded = Instr::mov(dst, Operand::Imm(1));
        guarded.pred = Some(Pred::on_true(p));
        f.block_mut(e).insts.push(guarded);
        f.block_mut(e).insts.push(Instr::mov(p, Operand::Imm(0)));
        assert_eq!(
            verify_full(&f),
            Err(VerifyError::PredicateUseBeforeDef(e, p.0))
        );
    }

    #[test]
    fn full_accepts_cross_block_predicate_def() {
        let mut f = valid_fn();
        let e = f.entry;
        let p = f.new_reg();
        // def in the entry, predicated use in the successor: fine.
        f.block_mut(e).insts.push(Instr::mov(p, Operand::Imm(1)));
        let succ = BlockId(1);
        let dst = f.new_reg();
        let mut guarded = Instr::mov(dst, Operand::Imm(2));
        guarded.pred = Some(Pred::on_true(p));
        f.block_mut(succ).insts.insert(0, guarded);
        assert_eq!(verify_full(&f), Ok(()));
    }

    #[test]
    fn full_accepts_in_block_def_before_use() {
        let mut f = valid_fn();
        let e = f.entry;
        let p = f.new_reg();
        f.block_mut(e).insts.push(Instr::mov(p, Operand::Imm(1)));
        let t = f.block(e).exits[0].target;
        f.block_mut(e).exits.insert(
            0,
            Exit {
                pred: Some(Pred::on_true(p)),
                target: t,
                count: 0.0,
            },
        );
        assert_eq!(verify_full(&f), Ok(()));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::DanglingEdge(BlockId(1), BlockId(9));
        assert!(e.to_string().contains("B1"));
        assert!(e.to_string().contains("B9"));
        let u = VerifyError::UnreachableBlock(BlockId(4));
        assert!(u.to_string().contains("B4"));
        assert!(u.to_string().contains("unreachable"));
        let p = VerifyError::PredicateUseBeforeDef(BlockId(2), 7);
        assert!(p.to_string().contains("B2"));
        assert!(p.to_string().contains("r7"));
    }
}
