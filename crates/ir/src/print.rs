//! Textual rendering of IR, used by diagnostics, examples, and tests.
//!
//! Output format:
//!
//! ```text
//! fn gcd(params: 2, regs: 7)
//! B0 "entry" (freq 1):
//!     r2 = ne r0, #0
//!   exits:
//!     [r2] -> B1
//!     -> ret r1
//! ```

use crate::block::ExitTarget;
use crate::function::Function;
use crate::instr::{Instr, Opcode};
use std::fmt;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = self.pred {
            write!(f, "{p} ")?;
        }
        match self.op {
            Opcode::Store => write!(
                f,
                "store {}, {}",
                self.a.expect("store addr"),
                self.b.expect("store value")
            ),
            op => {
                write!(f, "{} = {}", self.dst.expect("dst"), op.mnemonic())?;
                if let Some(a) = self.a {
                    write!(f, " {a}")?;
                }
                if let Some(b) = self.b {
                    write!(f, ", {b}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn {}(params: {}, regs: {})",
            self.name,
            self.params,
            self.reg_count()
        )?;
        for (id, blk) in self.blocks() {
            write!(f, "{id}")?;
            if let Some(n) = &blk.name {
                write!(f, " {n:?}")?;
            }
            if blk.freq > 0.0 {
                write!(f, " (freq {})", blk.freq)?;
            }
            writeln!(f, ":")?;
            for i in &blk.insts {
                writeln!(f, "    {i}")?;
            }
            writeln!(f, "  exits:")?;
            for e in &blk.exits {
                write!(f, "    ")?;
                if let Some(p) = e.pred {
                    write!(f, "{p} ")?;
                }
                match e.target {
                    ExitTarget::Block(t) => write!(f, "-> {t}")?,
                    ExitTarget::Return(None) => write!(f, "-> ret")?,
                    ExitTarget::Return(Some(v)) => write!(f, "-> ret {v}")?,
                }
                if e.count > 0.0 {
                    write!(f, "  (count {})", e.count)?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::ids::Reg;
    use crate::instr::{Instr, Operand, Pred};

    #[test]
    fn instr_display_forms() {
        let i = Instr::add(Reg(3), Operand::Reg(Reg(1)), Operand::Imm(4));
        assert_eq!(i.to_string(), "r3 = add r1, #4");
        let s =
            Instr::store(Operand::Reg(Reg(0)), Operand::Imm(7)).predicated(Pred::on_false(Reg(2)));
        assert_eq!(s.to_string(), "[!r2] store r0, #7");
        let m = Instr::mov(Reg(1), Operand::Imm(0));
        assert_eq!(m.to_string(), "r1 = mov #0");
    }

    #[test]
    fn function_display_contains_blocks_and_exits() {
        let mut fb = FunctionBuilder::new("demo", 1);
        let e = fb.create_named_block("entry");
        let t = fb.create_block();
        let z = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(2));
        fb.branch(c, t, z);
        fb.switch_to(t);
        fb.ret(Some(Operand::Imm(1)));
        fb.switch_to(z);
        fb.ret(Some(Operand::Reg(fb.param(0))));
        let f = fb.build().unwrap();
        let s = f.to_string();
        assert!(s.contains("fn demo"));
        assert!(s.contains("\"entry\""));
        assert!(s.contains("r1 = lt r0, #2"));
        assert!(s.contains("[r1] -> B1"));
        assert!(s.contains("-> ret r0"));
        assert!(s.contains("-> ret #1"));
    }
}
