//! Blocks and their exits.

use crate::ids::{BlockId, Reg};
use crate::instr::{Instr, Operand, Pred};

/// Where control transfers when an [`Exit`] fires.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExitTarget {
    /// Continue at another block.
    Block(BlockId),
    /// Leave the function, optionally returning a value.
    Return(Option<Operand>),
}

impl ExitTarget {
    /// The successor block, if this exit stays inside the function.
    pub fn block(self) -> Option<BlockId> {
        match self {
            ExitTarget::Block(b) => Some(b),
            ExitTarget::Return(_) => None,
        }
    }
}

/// One exit of a block: a (possibly predicated) branch.
///
/// On TRIPS every exit occupies an instruction slot and exactly one exit
/// fires per dynamic execution of the block. The final exit of a block must
/// be unpredicated so the exit set is total.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Exit {
    /// Guard; `None` means the exit always fires if reached.
    pub pred: Option<Pred>,
    /// Destination.
    pub target: ExitTarget,
    /// Profile: how many dynamic executions took this exit.
    pub count: f64,
}

impl Exit {
    /// Unconditional exit to `target`.
    pub fn jump(target: BlockId) -> Self {
        Exit {
            pred: None,
            target: ExitTarget::Block(target),
            count: 0.0,
        }
    }

    /// Predicated exit to `target`.
    pub fn when(pred: Pred, target: BlockId) -> Self {
        Exit {
            pred: Some(pred),
            target: ExitTarget::Block(target),
            count: 0.0,
        }
    }

    /// Unconditional return.
    pub fn ret(value: Option<Operand>) -> Self {
        Exit {
            pred: None,
            target: ExitTarget::Return(value),
            count: 0.0,
        }
    }

    /// Predicated return.
    pub fn ret_when(pred: Pred, value: Option<Operand>) -> Self {
        Exit {
            pred: Some(pred),
            target: ExitTarget::Return(value),
            count: 0.0,
        }
    }
}

/// A block: a sequence of predicated instructions plus a total set of exits.
///
/// Both classical basic blocks and TRIPS hyperblocks use this one type; a
/// basic block is simply a block in which no instruction is predicated and
/// the exits encode a single conditional or unconditional branch.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    /// Instructions, in program order. Program order is a valid dataflow
    /// (topological) order: every register use reads the nearest prior def.
    pub insts: Vec<Instr>,
    /// Exits, in priority order. The first exit whose predicate holds fires;
    /// the last exit must be unpredicated.
    pub exits: Vec<Exit>,
    /// Profile: dynamic execution count of this block (possibly fractional
    /// after duplication rescales profiles).
    pub freq: f64,
    /// Optional human-readable label, preserved through duplication.
    pub name: Option<String>,
}

impl Block {
    /// An empty block (no instructions, no exits yet).
    pub fn new() -> Self {
        Block::default()
    }

    /// Iterate over successor block ids (in-function edges only), in exit
    /// order, including duplicates if several exits share a target.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.exits.iter().filter_map(|e| e.target.block())
    }

    /// Number of instruction slots the block occupies, counting each exit as
    /// a branch instruction (as on TRIPS).
    pub fn size(&self) -> usize {
        self.insts.len() + self.exits.len()
    }

    /// Number of memory (load/store) instructions in the block.
    pub fn memory_ops(&self) -> usize {
        self.insts.iter().filter(|i| i.op.is_memory()).count()
    }

    /// Whether any instruction or exit is predicated.
    pub fn is_predicated(&self) -> bool {
        self.insts.iter().any(|i| i.pred.is_some()) || self.exits.iter().any(|e| e.pred.is_some())
    }

    /// Whether the block ends in a return on every path out.
    pub fn always_returns(&self) -> bool {
        self.exits
            .iter()
            .all(|e| matches!(e.target, ExitTarget::Return(_)))
    }

    /// Profiled weight of this block's edges into `target`: the sum of the
    /// recorded taken counts over every exit whose target is `target`.
    /// Zero when the edge exists but was never profiled — callers that need
    /// a probability should use [`Block::exit_probability`], which falls
    /// back to a uniform split.
    pub fn edge_weight_to(&self, target: BlockId) -> f64 {
        self.exits
            .iter()
            .filter(|e| e.target == ExitTarget::Block(target))
            .map(|e| e.count)
            .sum()
    }

    /// Total profiled outflow of the block: the sum of all exit counts
    /// (including returns). Equals the profiled execution count of the
    /// block when the profile is internally consistent.
    pub fn outflow(&self) -> f64 {
        self.exits.iter().map(|e| e.count).sum()
    }

    /// The largest profiled count on any single out-edge of this block —
    /// the "hottest successor edge" the profile-guided orderings consult.
    /// Zero for blocks with no exits or an unprofiled exit set.
    pub fn hottest_edge_weight(&self) -> f64 {
        self.exits.iter().map(|e| e.count).fold(0.0, f64::max)
    }

    /// Replace every exit targeting `from` with an exit targeting `to`.
    /// Returns the number of exits rewritten.
    pub fn retarget_exits(&mut self, from: BlockId, to: BlockId) -> usize {
        let mut n = 0;
        for e in &mut self.exits {
            if e.target == ExitTarget::Block(from) {
                e.target = ExitTarget::Block(to);
                n += 1;
            }
        }
        n
    }

    /// Positive-predicate implication facts from the block's instructions:
    /// for each register whose *last* def is an unpredicated `and` of two
    /// registers, firing on it implies firing on each conjunct
    /// (transitively). This is exactly the guard structure if-conversion
    /// builds, so exits guarded by a conjunction collapse into the exit
    /// guarded by a conjunct when both go to the same place.
    fn positive_implications(&self) -> crate::fxhash::FxHashMap<Reg, Vec<Reg>> {
        use crate::fxhash::FxHashMap;
        use crate::instr::{Opcode, Operand};
        // Per register: the registers its truth directly implies, according
        // to its last definition. `and a, b` implies both conjuncts;
        // `ne x, #0` and `mov x` are truth-preserving aliases of `x`.
        let mut direct: FxHashMap<Reg, Vec<Reg>> = FxHashMap::default();
        for inst in &self.insts {
            let Some(d) = inst.def() else { continue };
            direct.remove(&d);
            // Redefining d also invalidates facts that mention d on their
            // right-hand side: their registers' values have moved on.
            direct.retain(|_, v| !v.contains(&d));
            if inst.pred.is_some() {
                continue;
            }
            match (inst.op, inst.a, inst.b) {
                (Opcode::And, Some(Operand::Reg(a)), Some(Operand::Reg(b))) => {
                    direct.insert(d, vec![a, b]);
                }
                (Opcode::CmpNe, Some(Operand::Reg(x)), Some(Operand::Imm(0)))
                | (Opcode::Mov, Some(Operand::Reg(x)), None) => {
                    direct.insert(d, vec![x]);
                }
                _ => {}
            }
        }
        // Transitive closure (bounded by chain depth).
        let mut implied: FxHashMap<Reg, Vec<Reg>> = FxHashMap::default();
        for &r in direct.keys() {
            let mut out = Vec::new();
            let mut stack = vec![r];
            while let Some(x) = stack.pop() {
                for &y in direct.get(&x).into_iter().flatten() {
                    if !out.contains(&y) {
                        out.push(y);
                        stack.push(y);
                    }
                }
            }
            implied.insert(r, out);
        }
        implied
    }

    /// Remove redundant exits. Two rules, applied to a fixpoint:
    ///
    /// 1. a predicated exit whose entire suffix shares its target is
    ///    dropped (firing or falling through reach the same place);
    /// 2. a predicated exit whose *immediate successor* exit has the same
    ///    target and whose predicate is implied by this exit's predicate
    ///    (via the `and`-conjunction structure if-conversion builds) is
    ///    dropped.
    ///
    /// Counts fold into the surviving exit. Returns whether anything
    /// changed. This is the branch-removal cleanup that keeps merged
    /// hyperblocks' exit lists canonical — e.g. after both arms of a
    /// diamond merge, the two exits to the join collapse into one.
    pub fn dedupe_exits(&mut self) -> bool {
        let implied = self.positive_implications();
        let implies = |a: Option<Pred>, b: Option<Pred>| -> bool {
            match (a, b) {
                (_, None) => true,
                (Some(pa), Some(pb)) if pa.if_true && pb.if_true => {
                    pa.reg == pb.reg
                        || implied
                            .get(&pa.reg)
                            .map(|v| v.contains(&pb.reg))
                            .unwrap_or(false)
                }
                _ => false,
            }
        };
        let mut changed = false;
        loop {
            let n = self.exits.len();
            if n < 2 {
                return changed;
            }
            let mut drop_at: Option<usize> = None;
            'scan: for i in (0..n - 1).rev() {
                if self.exits[i].pred.is_none() {
                    continue;
                }
                // Rule 2: adjacent same-target with implication.
                if self.exits[i + 1].target == self.exits[i].target
                    && implies(self.exits[i].pred, self.exits[i + 1].pred)
                {
                    drop_at = Some(i);
                    break;
                }
                // Rule 1: uniform suffix.
                for j in i + 1..n {
                    if self.exits[j].target != self.exits[i].target {
                        continue 'scan;
                    }
                }
                drop_at = Some(i);
                break;
            }
            match drop_at {
                None => return changed,
                Some(i) => {
                    let removed = self.exits.remove(i);
                    self.exits[i].count += removed.count;
                    changed = true;
                }
            }
        }
    }

    /// Probability that a dynamic execution of this block takes `exit_idx`,
    /// according to the recorded profile. Falls back to a uniform split when
    /// the block was never executed in the profile.
    pub fn exit_probability(&self, exit_idx: usize) -> f64 {
        let total: f64 = self.exits.iter().map(|e| e.count).sum();
        if total <= 0.0 {
            if self.exits.is_empty() {
                0.0
            } else {
                1.0 / self.exits.len() as f64
            }
        } else {
            self.exits[exit_idx].count / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::instr::Instr;

    #[test]
    fn successors_skip_returns() {
        let mut b = Block::new();
        b.exits.push(Exit::when(Pred::on_true(Reg(0)), BlockId(1)));
        b.exits.push(Exit::ret(None));
        assert_eq!(b.successors().collect::<Vec<_>>(), vec![BlockId(1)]);
        assert!(!b.always_returns());
    }

    #[test]
    fn size_counts_exits_as_branches() {
        let mut b = Block::new();
        b.insts.push(Instr::mov(Reg(0), Operand::Imm(1)));
        b.exits.push(Exit::jump(BlockId(0)));
        assert_eq!(b.size(), 2);
    }

    #[test]
    fn memory_ops_counted() {
        let mut b = Block::new();
        b.insts.push(Instr::load(Reg(1), Operand::Imm(0)));
        b.insts
            .push(Instr::store(Operand::Imm(0), Operand::Reg(Reg(1))));
        b.insts.push(Instr::mov(Reg(2), Operand::Imm(5)));
        assert_eq!(b.memory_ops(), 2);
    }

    #[test]
    fn retarget_rewrites_all_matching_exits() {
        let mut b = Block::new();
        b.exits.push(Exit::when(Pred::on_true(Reg(0)), BlockId(3)));
        b.exits.push(Exit::jump(BlockId(3)));
        assert_eq!(b.retarget_exits(BlockId(3), BlockId(7)), 2);
        assert!(b.successors().all(|s| s == BlockId(7)));
    }

    #[test]
    fn edge_weight_sums_parallel_edges() {
        let mut b = Block::new();
        let mut e0 = Exit::when(Pred::on_true(Reg(0)), BlockId(1));
        e0.count = 30.0;
        let mut e1 = Exit::when(Pred::on_true(Reg(1)), BlockId(1));
        e1.count = 12.0;
        let mut e2 = Exit::jump(BlockId(2));
        e2.count = 58.0;
        b.exits.push(e0);
        b.exits.push(e1);
        b.exits.push(e2);
        assert!((b.edge_weight_to(BlockId(1)) - 42.0).abs() < 1e-9);
        assert!((b.edge_weight_to(BlockId(2)) - 58.0).abs() < 1e-9);
        assert_eq!(b.edge_weight_to(BlockId(9)), 0.0);
        assert!((b.outflow() - 100.0).abs() < 1e-9);
        assert!((b.hottest_edge_weight() - 58.0).abs() < 1e-9);
    }

    #[test]
    fn edge_weight_zero_without_profile() {
        let mut b = Block::new();
        b.exits.push(Exit::jump(BlockId(1)));
        assert_eq!(b.edge_weight_to(BlockId(1)), 0.0);
        assert_eq!(b.outflow(), 0.0);
        assert_eq!(b.hottest_edge_weight(), 0.0);
    }

    #[test]
    fn exit_probability_uses_counts() {
        let mut b = Block::new();
        let mut e0 = Exit::when(Pred::on_true(Reg(0)), BlockId(1));
        e0.count = 30.0;
        let mut e1 = Exit::jump(BlockId(2));
        e1.count = 70.0;
        b.exits.push(e0);
        b.exits.push(e1);
        assert!((b.exit_probability(0) - 0.3).abs() < 1e-9);
        assert!((b.exit_probability(1) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn exit_probability_uniform_without_profile() {
        let mut b = Block::new();
        b.exits.push(Exit::jump(BlockId(1)));
        b.exits.push(Exit::jump(BlockId(2)));
        assert!((b.exit_probability(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dedupe_collapses_uniform_suffix() {
        let mut b = Block::new();
        let mut e0 = Exit::when(Pred::on_true(Reg(0)), BlockId(3));
        e0.count = 4.0;
        let mut e1 = Exit::jump(BlockId(3));
        e1.count = 6.0;
        b.exits.push(e0);
        b.exits.push(e1);
        assert!(b.dedupe_exits());
        assert_eq!(b.exits.len(), 1);
        assert!(b.exits[0].pred.is_none());
        assert!((b.exits[0].count - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dedupe_keeps_distinct_targets() {
        let mut b = Block::new();
        b.exits.push(Exit::when(Pred::on_true(Reg(0)), BlockId(1)));
        b.exits.push(Exit::jump(BlockId(2)));
        assert!(!b.dedupe_exits());
        assert_eq!(b.exits.len(), 2);
    }

    #[test]
    fn dedupe_handles_interleaved_targets() {
        // [p]->X, [q]->Y, ->X : cannot drop the first (q may redirect).
        let mut b = Block::new();
        b.exits.push(Exit::when(Pred::on_true(Reg(0)), BlockId(1)));
        b.exits.push(Exit::when(Pred::on_true(Reg(2)), BlockId(9)));
        b.exits.push(Exit::jump(BlockId(1)));
        assert!(!b.dedupe_exits());
        assert_eq!(b.exits.len(), 3);
        // [p]->X, [q]->X, ->X : collapses fully.
        let mut b = Block::new();
        b.exits.push(Exit::when(Pred::on_true(Reg(0)), BlockId(1)));
        b.exits.push(Exit::when(Pred::on_true(Reg(2)), BlockId(1)));
        b.exits.push(Exit::jump(BlockId(1)));
        assert!(b.dedupe_exits());
        assert_eq!(b.exits.len(), 1);
    }

    #[test]
    fn predication_detection() {
        let mut b = Block::new();
        b.exits.push(Exit::jump(BlockId(1)));
        assert!(!b.is_predicated());
        b.insts
            .push(Instr::mov(Reg(0), Operand::Imm(1)).predicated(Pred::on_true(Reg(1))));
        assert!(b.is_predicated());
    }
}
