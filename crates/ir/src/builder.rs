//! Ergonomic construction of IR functions.
//!
//! Workloads and tests build CFGs through [`FunctionBuilder`], which tracks a
//! current block, allocates destination registers automatically, and installs
//! terminators as exits.

use crate::block::{Block, Exit, ExitTarget};
use crate::function::Function;
use crate::ids::{BlockId, Reg};
use crate::instr::{Instr, Opcode, Operand, Pred};
use crate::verify::{verify, VerifyError};

/// Builder for a [`Function`].
///
/// # Example
///
/// ```
/// use chf_ir::builder::FunctionBuilder;
/// use chf_ir::instr::Operand;
///
/// // return p0 < 10 ? 1 : 0, via a diamond
/// let mut b = FunctionBuilder::new("diamond", 1);
/// let (entry, then_, else_, join) =
///     (b.create_block(), b.create_block(), b.create_block(), b.create_block());
/// b.switch_to(entry);
/// let out = b.fresh_reg();
/// let c = b.cmp_lt(Operand::Reg(b.param(0)), Operand::Imm(10));
/// b.branch(c, then_, else_);
/// b.switch_to(then_);
/// b.mov_to(out, Operand::Imm(1));
/// b.jump(join);
/// b.switch_to(else_);
/// b.mov_to(out, Operand::Imm(0));
/// b.jump(join);
/// b.switch_to(join);
/// b.ret(Some(Operand::Reg(out)));
/// let f = b.build().unwrap();
/// assert_eq!(f.block_count(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    cur: Option<BlockId>,
    first_created: bool,
}

impl FunctionBuilder {
    /// Start building a function with `params` parameters.
    pub fn new(name: impl Into<String>, params: u32) -> Self {
        FunctionBuilder {
            f: Function::new(name, params),
            cur: None,
            first_created: false,
        }
    }

    /// Register holding parameter `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn param(&self, i: u32) -> Reg {
        assert!(i < self.f.params, "parameter index out of range");
        Reg(i)
    }

    /// Allocate a fresh register without emitting an instruction.
    pub fn fresh_reg(&mut self) -> Reg {
        self.f.new_reg()
    }

    /// Create a new empty block. The first call returns the entry block.
    pub fn create_block(&mut self) -> BlockId {
        if !self.first_created {
            self.first_created = true;
            self.f.entry
        } else {
            self.f.add_block(Block::new())
        }
    }

    /// Create a new empty block with a debug label.
    pub fn create_named_block(&mut self, name: &str) -> BlockId {
        let id = self.create_block();
        self.f.block_mut(id).name = Some(name.to_string());
        id
    }

    /// Make `block` the insertion point for subsequent instructions.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(self.f.contains_block(block));
        self.cur = Some(block);
    }

    fn cur_block(&mut self) -> &mut Block {
        let cur = self.cur.expect("no current block; call switch_to first");
        self.f.block_mut(cur)
    }

    /// Append a pre-built instruction to the current block.
    pub fn push(&mut self, inst: Instr) {
        self.cur_block().insts.push(inst);
    }

    /// Emit a binary operation into a fresh register and return it.
    pub fn emit(&mut self, op: Opcode, a: Operand, b: Operand) -> Reg {
        let dst = self.f.new_reg();
        self.push(Instr::binary(op, dst, a, b));
        dst
    }

    /// Emit a unary operation into a fresh register and return it.
    pub fn emit_unary(&mut self, op: Opcode, a: Operand) -> Reg {
        let dst = self.f.new_reg();
        self.push(Instr::unary(op, dst, a));
        dst
    }

    /// `fresh = a + b`
    pub fn add(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Add, a, b)
    }

    /// `fresh = a - b`
    pub fn sub(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Sub, a, b)
    }

    /// `fresh = a * b`
    pub fn mul(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Mul, a, b)
    }

    /// `fresh = a / b`
    pub fn div(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Div, a, b)
    }

    /// `fresh = a % b`
    pub fn rem(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Rem, a, b)
    }

    /// `fresh = a & b`
    pub fn and(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::And, a, b)
    }

    /// `fresh = a | b`
    pub fn or(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Or, a, b)
    }

    /// `fresh = a ^ b`
    pub fn xor(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Xor, a, b)
    }

    /// `fresh = a << b`
    pub fn shl(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Shl, a, b)
    }

    /// `fresh = a >> b`
    pub fn shr(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::Shr, a, b)
    }

    /// `fresh = (a == b)`
    pub fn cmp_eq(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::CmpEq, a, b)
    }

    /// `fresh = (a != b)`
    pub fn cmp_ne(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::CmpNe, a, b)
    }

    /// `fresh = (a < b)`
    pub fn cmp_lt(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::CmpLt, a, b)
    }

    /// `fresh = (a <= b)`
    pub fn cmp_le(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::CmpLe, a, b)
    }

    /// `fresh = (a > b)`
    pub fn cmp_gt(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::CmpGt, a, b)
    }

    /// `fresh = (a >= b)`
    pub fn cmp_ge(&mut self, a: Operand, b: Operand) -> Reg {
        self.emit(Opcode::CmpGe, a, b)
    }

    /// `fresh = a`
    pub fn mov(&mut self, a: Operand) -> Reg {
        self.emit_unary(Opcode::Mov, a)
    }

    /// `dst = a` into an existing register (for cross-block variables).
    pub fn mov_to(&mut self, dst: Reg, a: Operand) {
        self.push(Instr::mov(dst, a));
    }

    /// `fresh = mem[addr]`
    pub fn load(&mut self, addr: Operand) -> Reg {
        self.emit_unary(Opcode::Load, addr)
    }

    /// `mem[addr] = value`
    pub fn store(&mut self, addr: Operand, value: Operand) {
        self.push(Instr::store(addr, value));
    }

    /// Terminate the current block with an unconditional jump.
    ///
    /// # Panics
    /// Panics if the block already has exits.
    pub fn jump(&mut self, target: BlockId) {
        let b = self.cur_block();
        assert!(b.exits.is_empty(), "block already terminated");
        b.exits.push(Exit::jump(target));
    }

    /// Terminate with a conditional branch: `cond != 0` goes to `on_true`,
    /// otherwise `on_false`.
    ///
    /// # Panics
    /// Panics if the block already has exits.
    pub fn branch(&mut self, cond: Reg, on_true: BlockId, on_false: BlockId) {
        let b = self.cur_block();
        assert!(b.exits.is_empty(), "block already terminated");
        b.exits.push(Exit::when(Pred::on_true(cond), on_true));
        b.exits.push(Exit::jump(on_false));
    }

    /// Terminate with a return.
    ///
    /// # Panics
    /// Panics if the block already has exits.
    pub fn ret(&mut self, value: Option<Operand>) {
        let b = self.cur_block();
        assert!(b.exits.is_empty(), "block already terminated");
        b.exits.push(Exit {
            pred: None,
            target: ExitTarget::Return(value),
            count: 0.0,
        });
    }

    /// Finish, verify, and return the function.
    ///
    /// # Errors
    /// Returns the first structural invariant violation found.
    pub fn build(self) -> Result<Function, VerifyError> {
        verify(&self.f)?;
        Ok(self.f)
    }

    /// Finish without verification (for tests that deliberately build
    /// ill-formed IR).
    pub fn build_unverified(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_build() {
        let mut b = FunctionBuilder::new("f", 1);
        let e = b.create_block();
        b.switch_to(e);
        let x = b.add(Operand::Reg(b.param(0)), Operand::Imm(1));
        b.ret(Some(Operand::Reg(x)));
        let f = b.build().unwrap();
        assert_eq!(f.block(f.entry).insts.len(), 1);
        assert_eq!(f.block(f.entry).exits.len(), 1);
    }

    #[test]
    fn branch_creates_two_exits() {
        let mut b = FunctionBuilder::new("f", 1);
        let e = b.create_block();
        let t = b.create_block();
        let z = b.create_block();
        b.switch_to(e);
        let c = b.cmp_lt(Operand::Reg(b.param(0)), Operand::Imm(5));
        b.branch(c, t, z);
        b.switch_to(t);
        b.ret(Some(Operand::Imm(1)));
        b.switch_to(z);
        b.ret(Some(Operand::Imm(0)));
        let f = b.build().unwrap();
        assert_eq!(f.block(f.entry).exits.len(), 2);
        assert!(f.block(f.entry).exits[0].pred.is_some());
        assert!(f.block(f.entry).exits[1].pred.is_none());
    }

    #[test]
    #[should_panic(expected = "block already terminated")]
    fn double_terminator_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.create_block();
        b.switch_to(e);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    fn build_rejects_unterminated_block() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.create_block();
        b.switch_to(e);
        assert!(b.build().is_err());
    }

    #[test]
    fn named_blocks_keep_labels() {
        let mut b = FunctionBuilder::new("f", 0);
        let e = b.create_named_block("entry");
        b.switch_to(e);
        b.ret(None);
        let f = b.build().unwrap();
        assert_eq!(f.block(f.entry).name.as_deref(), Some("entry"));
    }
}
