//! Textual IR parser — the inverse of the [`crate::print`] format.
//!
//! Accepts exactly what [`Function`]'s `Display` implementation produces,
//! so IR can be dumped, edited by hand, and reloaded:
//!
//! ```text
//! fn gcd(params: 2, regs: 7)
//! B0 "entry" (freq 1):
//!     r2 = ne r0, #0
//!     [r2] store r1, #5
//!   exits:
//!     [r2] -> B1  (count 3)
//!     -> ret r1
//! ```
//!
//! Block labels are renumbered on input (parsing assigns fresh contiguous
//! ids in order of appearance), so `parse(print(f))` is structurally
//! identical to `f` and textually identical whenever `f`'s ids were already
//! contiguous.

use crate::block::{Block, Exit, ExitTarget};
use crate::function::Function;
use crate::ids::{BlockId, Reg};
use crate::instr::{Instr, Opcode, Operand, Pred};
use crate::verify::verify;
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn opcode_from_mnemonic(m: &str) -> Option<Opcode> {
    Some(match m {
        "add" => Opcode::Add,
        "sub" => Opcode::Sub,
        "mul" => Opcode::Mul,
        "div" => Opcode::Div,
        "rem" => Opcode::Rem,
        "and" => Opcode::And,
        "or" => Opcode::Or,
        "xor" => Opcode::Xor,
        "shl" => Opcode::Shl,
        "shr" => Opcode::Shr,
        "not" => Opcode::Not,
        "neg" => Opcode::Neg,
        "mov" => Opcode::Mov,
        "eq" => Opcode::CmpEq,
        "ne" => Opcode::CmpNe,
        "lt" => Opcode::CmpLt,
        "le" => Opcode::CmpLe,
        "gt" => Opcode::CmpGt,
        "ge" => Opcode::CmpGe,
        "load" => Opcode::Load,
        "store" => Opcode::Store,
        _ => return None,
    })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let digits = tok.strip_prefix('r').ok_or_else(|| ParseError {
        line,
        message: format!("expected register, got `{tok}`"),
    })?;
    digits.parse::<u32>().map(Reg).map_err(|_| ParseError {
        line,
        message: format!("bad register `{tok}`"),
    })
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if let Some(v) = tok.strip_prefix('#') {
        v.parse::<i64>().map(Operand::Imm).map_err(|_| ParseError {
            line,
            message: format!("bad immediate `{tok}`"),
        })
    } else {
        parse_reg(tok, line).map(Operand::Reg)
    }
}

/// Strip a leading `[rN]` / `[!rN]` predicate from `s`, if present.
fn take_pred(s: &str, line: usize) -> Result<(Option<Pred>, &str), ParseError> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('[') {
        let end = rest.find(']').ok_or_else(|| ParseError {
            line,
            message: "unterminated predicate".into(),
        })?;
        let inner = &rest[..end];
        let (if_true, regtok) = match inner.strip_prefix('!') {
            Some(r) => (false, r),
            None => (true, inner),
        };
        let reg = parse_reg(regtok, line)?;
        Ok((Some(Pred { reg, if_true }), rest[end + 1..].trim_start()))
    } else {
        Ok((None, s))
    }
}

fn parse_instruction(body: &str, line: usize) -> Result<Instr, ParseError> {
    let (pred, rest) = take_pred(body, line)?;
    if let Some(store_args) = rest.strip_prefix("store ") {
        let mut parts = store_args.split(',').map(str::trim);
        let addr = parse_operand(parts.next().unwrap_or(""), line)?;
        let value = parse_operand(
            parts.next().ok_or_else(|| ParseError {
                line,
                message: "store needs two operands".into(),
            })?,
            line,
        )?;
        if parts.next().is_some() {
            return err(line, "too many operands for store");
        }
        let mut i = Instr::store(addr, value);
        i.pred = pred;
        return Ok(i);
    }

    // `rD = mnemonic a(, b)?`
    let (dst_tok, rhs) = rest.split_once('=').ok_or_else(|| ParseError {
        line,
        message: format!("expected `dst = op ...` in `{rest}`"),
    })?;
    let dst = parse_reg(dst_tok.trim(), line)?;
    let rhs = rhs.trim();
    let (mnem, args) = rhs.split_once(' ').ok_or_else(|| ParseError {
        line,
        message: format!("missing operands in `{rhs}`"),
    })?;
    let op = opcode_from_mnemonic(mnem).ok_or_else(|| ParseError {
        line,
        message: format!("unknown opcode `{mnem}`"),
    })?;
    let mut parts = args.split(',').map(str::trim);
    let a = parse_operand(parts.next().unwrap_or(""), line)?;
    let b = parts.next().map(|t| parse_operand(t, line)).transpose()?;
    if parts.next().is_some() {
        return err(line, "too many operands");
    }
    let mut i = match (op.arity(), b) {
        (1, None) => Instr::unary(op, dst, a),
        (2, Some(b)) => Instr::binary(op, dst, a, b),
        (want, _) => {
            return err(line, format!("`{mnem}` takes {want} operand(s)"));
        }
    };
    i.pred = pred;
    Ok(i)
}

/// Parse `(count F)` / `(freq F)` style suffixes.
fn take_paren_suffix<'a>(s: &'a str, key: &str) -> (Option<f64>, &'a str) {
    let prefix = format!("({key} ");
    if let Some(open) = s.rfind(&prefix) {
        if let Some(close) = s[open..].find(')') {
            let inner = &s[open + prefix.len()..open + close];
            if let Ok(v) = inner.parse::<f64>() {
                return (Some(v), s[..open].trim_end());
            }
        }
    }
    (None, s)
}

fn parse_exit(
    body: &str,
    line: usize,
    labels: &mut HashMap<String, usize>,
) -> Result<(Exit, Option<usize>), ParseError> {
    let (count, body) = take_paren_suffix(body, "count");
    let (pred, rest) = take_pred(body, line)?;
    let rest = rest.strip_prefix("->").ok_or_else(|| ParseError {
        line,
        message: format!("expected `->` in exit `{body}`"),
    })?;
    let rest = rest.trim();
    let (target, label_slot) = if let Some(ret) = rest.strip_prefix("ret") {
        let ret = ret.trim();
        let value = if ret.is_empty() {
            None
        } else {
            Some(parse_operand(ret, line)?)
        };
        (ExitTarget::Return(value), None)
    } else {
        if !rest.starts_with('B') {
            return err(line, format!("expected block label or `ret`, got `{rest}`"));
        }
        let next = labels.len();
        let slot = *labels.entry(rest.to_string()).or_insert(next);
        // Placeholder target; fixed up after all blocks are known.
        (ExitTarget::Block(BlockId(0)), Some(slot))
    };
    Ok((
        Exit {
            pred,
            target,
            count: count.unwrap_or(0.0),
        },
        label_slot,
    ))
}

/// Parse a function from its textual form.
///
/// Blank lines and `#`-comment lines are ignored anywhere in the input, so
/// machine-written repro files (see `chf-core`'s differential oracle) can
/// carry a human-readable provenance header above the IR itself.
///
/// # Errors
/// Returns a [`ParseError`] with the offending line, or a verification
/// failure mapped to line 0 if the parsed function is structurally invalid.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .peekable();

    // Header.
    let (ln, header) = lines.next().ok_or_else(|| ParseError {
        line: 0,
        message: "empty input".into(),
    })?;
    let header = header.trim();
    let rest = header.strip_prefix("fn ").ok_or_else(|| ParseError {
        line: ln + 1,
        message: "expected `fn name(params: N, regs: M)`".into(),
    })?;
    let open = rest.find('(').ok_or_else(|| ParseError {
        line: ln + 1,
        message: "missing `(` in header".into(),
    })?;
    let name = rest[..open].to_string();
    let args = rest[open + 1..].trim_end_matches(')');
    let mut params = 0u32;
    let mut regs = 0u32;
    for part in args.split(',') {
        let part = part.trim();
        if let Some(v) = part.strip_prefix("params:") {
            params = v.trim().parse().map_err(|_| ParseError {
                line: ln + 1,
                message: "bad params count".into(),
            })?;
        } else if let Some(v) = part.strip_prefix("regs:") {
            regs = v.trim().parse().map_err(|_| ParseError {
                line: ln + 1,
                message: "bad regs count".into(),
            })?;
        }
    }

    // Blocks.
    let mut labels: HashMap<String, usize> = HashMap::new();
    // (label slot, block, per-exit label slots)
    let mut blocks: Vec<(usize, Block, Vec<Option<usize>>)> = Vec::new();

    while let Some((ln, raw)) = lines.next() {
        let line_no = ln + 1;
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if !line.starts_with('B') {
            return err(line_no, format!("expected block header, got `{line}`"));
        }
        let header = line.strip_suffix(':').ok_or_else(|| ParseError {
            line: line_no,
            message: "block header must end with `:`".into(),
        })?;
        let (freq, header) = take_paren_suffix(header, "freq");
        let header = header.trim_end();
        let (label, name_part) = match header.split_once(' ') {
            Some((l, n)) => (l, Some(n.trim())),
            None => (header, None),
        };
        let next = labels.len();
        let slot = *labels.entry(label.to_string()).or_insert(next);
        let mut block = Block {
            freq: freq.unwrap_or(0.0),
            name: name_part
                .map(|n| n.trim_matches('"').to_string())
                .filter(|n| !n.is_empty()),
            ..Block::new()
        };
        let mut exit_slots: Vec<Option<usize>> = Vec::new();

        // Instructions until `  exits:`.
        let mut in_exits = false;
        while let Some((ln2, raw2)) = lines.peek().copied() {
            let line_no2 = ln2 + 1;
            let l = raw2.trim_end();
            if l.trim().is_empty() {
                lines.next();
                continue;
            }
            if !l.starts_with(' ') {
                break; // next block header
            }
            lines.next();
            let body = l.trim_start();
            if body == "exits:" {
                in_exits = true;
                continue;
            }
            if in_exits {
                let (exit, slot) = parse_exit(body, line_no2, &mut labels)?;
                exit_slots.push(slot);
                block.exits.push(exit);
            } else {
                block.insts.push(parse_instruction(body, line_no2)?);
            }
        }
        blocks.push((slot, block, exit_slots));
    }

    if blocks.is_empty() {
        return err(0, "no blocks");
    }

    // Assemble: label slots are assigned in first-appearance order, and we
    // create function blocks in *definition* order; map slots to ids.
    let mut f = Function::new(name, params);
    let mut slot_to_id: HashMap<usize, BlockId> = HashMap::new();
    for (i, (slot, _, _)) in blocks.iter().enumerate() {
        let id = if i == 0 {
            f.entry
        } else {
            f.add_block(Block::new())
        };
        if slot_to_id.insert(*slot, id).is_some() {
            return err(0, "duplicate block label");
        }
    }
    for (slot, mut block, exit_slots) in blocks {
        for (e, s) in block.exits.iter_mut().zip(&exit_slots) {
            if let Some(s) = s {
                let id = slot_to_id.get(s).ok_or_else(|| ParseError {
                    line: 0,
                    message: "exit targets undefined block".into(),
                })?;
                e.target = ExitTarget::Block(*id);
            }
        }
        let id = slot_to_id[&slot];
        *f.block_mut(id) = block;
    }
    f.ensure_regs(regs);

    verify(&f).map_err(|e| ParseError {
        line: 0,
        message: format!("parsed function fails verification: {e}"),
    })?;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::testgen::{generate, GenConfig};

    #[test]
    fn round_trip_simple() {
        let mut fb = FunctionBuilder::new("demo", 2);
        let e = fb.create_named_block("entry");
        let t = fb.create_block();
        let z = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Reg(fb.param(1)));
        fb.branch(c, t, z);
        fb.switch_to(t);
        fb.store(Operand::Imm(5), Operand::Reg(fb.param(0)));
        fb.ret(Some(Operand::Imm(1)));
        fb.switch_to(z);
        fb.ret(Some(Operand::Reg(fb.param(1))));
        let f = fb.build().unwrap();
        let text = f.to_string();
        let parsed = parse_function(&text).unwrap();
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn round_trip_generated_programs() {
        for seed in 0..40 {
            let f = generate(seed, &GenConfig::default());
            let text = f.to_string();
            let parsed =
                parse_function(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(parsed.to_string(), text, "seed {seed}");
        }
    }

    #[test]
    fn parses_predicates_and_counts() {
        let text = "fn p(params: 1, regs: 4)\n\
                    B0 (freq 7):\n    \
                    r1 = lt r0, #10\n    \
                    [r1] r2 = add r0, #1\n    \
                    [!r1] r3 = mov #0\n  \
                    exits:\n    \
                    [r1] -> B1  (count 5)\n    \
                    -> ret r3  (count 2)\n\
                    B1:\n  \
                    exits:\n    \
                    -> ret r2\n";
        let f = parse_function(text).unwrap();
        let b0 = f.block(f.entry);
        assert_eq!(b0.freq, 7.0);
        assert_eq!(b0.insts.len(), 3);
        assert_eq!(b0.insts[1].pred, Some(Pred::on_true(Reg(1))));
        assert_eq!(b0.insts[2].pred, Some(Pred::on_false(Reg(1))));
        assert_eq!(b0.exits[0].count, 5.0);
    }

    #[test]
    fn forward_references_resolve() {
        let text = "fn fwd(params: 0, regs: 0)\n\
                    B0:\n  exits:\n    -> B1\n\
                    B1:\n  exits:\n    -> ret\n";
        let f = parse_function(text).unwrap();
        assert_eq!(f.block_count(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text =
            "fn bad(params: 0, regs: 2)\nB0:\n    r1 = frobnicate r0, #1\n  exits:\n    -> ret\n";
        let e = parse_function(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn rejects_unverifiable_functions() {
        // Exit to a block that is never defined.
        let text = "fn bad(params: 0, regs: 0)\nB0:\n  exits:\n    -> B7\n";
        assert!(parse_function(text).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# repro: seed 42, fault DanglingExit\n\
                    # reduced from 9 blocks to 2\n\n\
                    fn fwd(params: 0, regs: 0)\n\
                    B0:\n  exits:\n    -> B1\n\n\
                    # interior comment\n\
                    B1:\n  exits:\n    -> ret\n";
        let f = parse_function(text).unwrap();
        assert_eq!(f.block_count(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_function("").is_err());
        assert!(parse_function("not a function").is_err());
        assert!(parse_function("fn x(params: 0, regs: 0)\n").is_err());
    }
}
