//! CFG traversal utilities: successor/predecessor maps, orders, reachability.

use crate::function::Function;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::BlockId;
use std::collections::VecDeque;

/// Deduplicated successor list of a block, in first-appearance order.
pub fn successors(f: &Function, b: BlockId) -> Vec<BlockId> {
    // Blocks have a handful of exits at most; a linear scan over the
    // already-collected prefix beats hashing.
    let mut out: Vec<BlockId> = Vec::new();
    for s in f.block(b).successors() {
        if !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// Predecessor map for all live blocks (deduplicated per edge pair).
pub fn predecessors(f: &Function) -> FxHashMap<BlockId, Vec<BlockId>> {
    let mut preds: FxHashMap<BlockId, Vec<BlockId>> = FxHashMap::default();
    for id in f.block_ids() {
        preds.entry(id).or_default();
    }
    for id in f.block_ids() {
        for s in successors(f, id) {
            preds.entry(s).or_default().push(id);
        }
    }
    preds
}

/// Number of distinct predecessors of `b`.
pub fn predecessor_count(f: &Function, b: BlockId) -> usize {
    // Membership does not need the deduplicated successor list; an
    // allocation-free edge scan suffices (formation classifies every merge
    // candidate with this).
    f.block_ids()
        .filter(|&id| f.block(id).successors().any(|s| s == b))
        .count()
}

/// Blocks reachable from the entry.
pub fn reachable(f: &Function) -> FxHashSet<BlockId> {
    let mut seen = FxHashSet::default();
    let mut queue = VecDeque::new();
    queue.push_back(f.entry);
    seen.insert(f.entry);
    while let Some(b) = queue.pop_front() {
        for s in successors(f, b) {
            if f.contains_block(s) && seen.insert(s) {
                queue.push_back(s);
            }
        }
    }
    seen
}

/// Reverse postorder of the reachable subgraph, starting at the entry.
///
/// RPO is a valid iteration order for forward dataflow problems and the
/// basis of the dominator computation.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut visited = FxHashSet::default();
    let mut post = Vec::new();
    // Iterative DFS with explicit stack to avoid recursion depth limits on
    // large unrolled CFGs.
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    visited.insert(f.entry);
    while let Some((b, i)) = stack.pop() {
        let succs = successors(f, b);
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if f.contains_block(s) && visited.insert(s) {
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// Remove blocks unreachable from the entry. Returns the number removed.
pub fn remove_unreachable(f: &mut Function) -> usize {
    let live = reachable(f);
    let dead: Vec<BlockId> = f.block_ids().filter(|b| !live.contains(b)).collect();
    for b in &dead {
        f.remove_block(*b);
    }
    dead.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::Operand;

    /// entry -> a -> c, entry -> b -> c, c -> ret; d unreachable
    fn diamond_with_dead() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let entry = b.create_block();
        let a = b.create_block();
        let bb = b.create_block();
        let c = b.create_block();
        let d = b.create_block();
        b.switch_to(entry);
        let cond = b.cmp_lt(Operand::Reg(b.param(0)), Operand::Imm(0));
        b.branch(cond, a, bb);
        b.switch_to(a);
        b.jump(c);
        b.switch_to(bb);
        b.jump(c);
        b.switch_to(c);
        b.ret(None);
        b.switch_to(d);
        b.jump(c);
        b.build_unverified()
    }

    #[test]
    fn successors_deduplicate() {
        let f = diamond_with_dead();
        assert_eq!(successors(&f, f.entry).len(), 2);
    }

    #[test]
    fn predecessors_cover_all_edges() {
        let f = diamond_with_dead();
        let preds = predecessors(&f);
        let c = BlockId(3);
        // a, b, and dead d all point at c
        assert_eq!(preds[&c].len(), 3);
        assert_eq!(predecessor_count(&f, c), 3);
        assert!(preds[&f.entry].is_empty());
    }

    #[test]
    fn reachability_excludes_dead() {
        let f = diamond_with_dead();
        let r = reachable(&f);
        assert_eq!(r.len(), 4);
        assert!(!r.contains(&BlockId(4)));
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let f = diamond_with_dead();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        let pos: FxHashMap<BlockId, usize> = rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        // join must come after both arms
        assert!(pos[&BlockId(3)] > pos[&BlockId(1)]);
        assert!(pos[&BlockId(3)] > pos[&BlockId(2)]);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn remove_unreachable_drops_dead_only() {
        let mut f = diamond_with_dead();
        assert_eq!(remove_unreachable(&mut f), 1);
        assert_eq!(f.block_count(), 4);
        assert!(!f.contains_block(BlockId(4)));
    }

    #[test]
    fn rpo_handles_loops() {
        // entry -> loop -> loop | exit
        let mut b = FunctionBuilder::new("f", 1);
        let entry = b.create_block();
        let l = b.create_block();
        let x = b.create_block();
        b.switch_to(entry);
        b.jump(l);
        b.switch_to(l);
        let c = b.cmp_lt(Operand::Reg(b.param(0)), Operand::Imm(10));
        b.branch(c, l, x);
        b.switch_to(x);
        b.ret(None);
        let f = b.build().unwrap();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo.len(), 3);
        assert_eq!(rpo[0], f.entry);
    }
}
