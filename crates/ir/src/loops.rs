//! Natural loop discovery.
//!
//! Head duplication (paper §4.1) distinguishes three cases when merging a
//! successor `S` into a hyperblock `HB`:
//!
//! * `HB → S` is a back edge and `HB == S` — **unrolling**;
//! * `S` is a loop header and `HB → S` is not a back edge — **peeling**;
//! * otherwise — classical **tail duplication**.
//!
//! This module provides the loop structure those tests consult: back edges
//! (edges `u → v` where `v` dominates `u`), natural loop bodies, and the
//! nesting forest.

use crate::cfg::successors;
use crate::dom::DomTree;
use crate::function::Function;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::BlockId;

/// A natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: FxHashSet<BlockId>,
    /// The back edges `(latch, header)` defining this loop.
    pub back_edges: Vec<(BlockId, BlockId)>,
    /// Index of the enclosing loop in the forest, if nested.
    pub parent: Option<usize>,
}

impl Loop {
    /// Nesting depth (1 = outermost).
    fn depth_in(&self, forest: &LoopForest) -> usize {
        let mut d = 1;
        let mut cur = self.parent;
        while let Some(p) = cur {
            d += 1;
            cur = forest.loops[p].parent;
        }
        d
    }
}

/// All natural loops of a function, with nesting.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// The loops, outer loops before inner loops of the same header chain.
    pub loops: Vec<Loop>,
    header_index: FxHashMap<BlockId, usize>,
}

impl LoopForest {
    /// Discover natural loops using `dom`.
    ///
    /// Loops sharing a header are merged into a single [`Loop`] (standard
    /// natural-loop convention).
    pub fn compute(f: &Function, dom: &DomTree) -> LoopForest {
        // 1. find back edges
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
        for u in f.block_ids() {
            if !dom.is_reachable(u) {
                continue;
            }
            for v in successors(f, u) {
                if dom.dominates(v, u) {
                    back_edges.push((u, v));
                }
            }
        }

        // 2. natural loop of each back edge; merge by header
        let preds = crate::cfg::predecessors(f);
        let mut by_header: FxHashMap<BlockId, Loop> = FxHashMap::default();
        for &(latch, header) in &back_edges {
            let entry = by_header.entry(header).or_insert_with(|| Loop {
                header,
                body: [header].into_iter().collect(),
                back_edges: Vec::new(),
                parent: None,
            });
            entry.back_edges.push((latch, header));
            // walk backwards from latch, not crossing header
            let mut stack = vec![latch];
            while let Some(b) = stack.pop() {
                if !entry.body.insert(b) {
                    continue;
                }
                if b == header {
                    continue;
                }
                for &p in preds.get(&b).into_iter().flatten() {
                    if dom.is_reachable(p) {
                        stack.push(p);
                    }
                }
            }
        }

        let mut loops: Vec<Loop> = by_header.into_values().collect();
        // Sort by body size descending so parents precede children.
        loops.sort_by(|a, b| {
            b.body
                .len()
                .cmp(&a.body.len())
                .then(a.header.cmp(&b.header))
        });

        // 3. nesting: the parent of L is the smallest loop strictly
        // containing L's header that is not L itself.
        let n = loops.len();
        for i in 0..n {
            let mut best: Option<usize> = None;
            for j in 0..n {
                if i == j {
                    continue;
                }
                if loops[j].body.contains(&loops[i].header)
                    && loops[j].header != loops[i].header
                    && loops[j].body.len() > loops[i].body.len()
                {
                    best = match best {
                        None => Some(j),
                        Some(k) if loops[j].body.len() < loops[k].body.len() => Some(j),
                        other => other,
                    };
                }
            }
            loops[i].parent = best;
        }

        let header_index = loops
            .iter()
            .enumerate()
            .map(|(i, l)| (l.header, i))
            .collect();
        LoopForest {
            loops,
            header_index,
        }
    }

    /// Convenience: compute dominators then loops.
    pub fn of(f: &Function) -> LoopForest {
        let dom = DomTree::compute(f);
        Self::compute(f, &dom)
    }

    /// Whether `b` is a loop header.
    pub fn is_header(&self, b: BlockId) -> bool {
        self.header_index.contains_key(&b)
    }

    /// The loop headed by `b`, if any.
    pub fn loop_of_header(&self, b: BlockId) -> Option<&Loop> {
        self.header_index.get(&b).map(|&i| &self.loops[i])
    }

    /// Whether `u → v` is a back edge of some loop.
    pub fn is_back_edge(&self, u: BlockId, v: BlockId) -> bool {
        self.loop_of_header(v)
            .map(|l| l.back_edges.iter().any(|&(lu, _)| lu == u))
            .unwrap_or(false)
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.body.contains(&b))
            .max_by_key(|l| l.depth_in(self))
    }

    /// Nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> usize {
        self.innermost_containing(b)
            .map(|l| l.depth_in(self))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::Operand;

    /// e -> h1; h1 -> h2 | exit; h2 -> h2 | h1back; h1back -> h1
    fn nested_loops() -> Function {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let h1 = fb.create_block();
        let h2 = fb.create_block();
        let back = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        fb.jump(h1);
        fb.switch_to(h1);
        let c1 = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(10));
        fb.branch(c1, h2, exit);
        fb.switch_to(h2);
        let c2 = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(5));
        fb.branch(c2, h2, back);
        fb.switch_to(back);
        fb.jump(h1);
        fb.switch_to(exit);
        fb.ret(None);
        fb.build().unwrap()
    }

    #[test]
    fn finds_nested_loops() {
        let f = nested_loops();
        let lf = LoopForest::of(&f);
        assert_eq!(lf.loops.len(), 2);
        let (h1, h2) = (BlockId(1), BlockId(2));
        assert!(lf.is_header(h1));
        assert!(lf.is_header(h2));
        let outer = lf.loop_of_header(h1).unwrap();
        let inner = lf.loop_of_header(h2).unwrap();
        assert!(outer.body.contains(&h2));
        assert!(outer.body.contains(&BlockId(3)));
        assert!(!inner.body.contains(&h1));
        assert_eq!(inner.body.len(), 1); // self loop
    }

    #[test]
    fn back_edge_classification() {
        let f = nested_loops();
        let lf = LoopForest::of(&f);
        assert!(lf.is_back_edge(BlockId(2), BlockId(2))); // self loop
        assert!(lf.is_back_edge(BlockId(3), BlockId(1)));
        assert!(!lf.is_back_edge(BlockId(0), BlockId(1))); // entry edge
        assert!(!lf.is_back_edge(BlockId(1), BlockId(2))); // loop entry
    }

    #[test]
    fn nesting_depths() {
        let f = nested_loops();
        let lf = LoopForest::of(&f);
        assert_eq!(lf.depth(BlockId(0)), 0);
        assert_eq!(lf.depth(BlockId(1)), 1);
        assert_eq!(lf.depth(BlockId(2)), 2);
        assert_eq!(lf.depth(BlockId(4)), 0);
        let inner = lf.loop_of_header(BlockId(2)).unwrap();
        assert!(inner.parent.is_some());
    }

    #[test]
    fn no_loops_in_dag() {
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        fb.jump(x);
        fb.switch_to(x);
        fb.ret(None);
        let f = fb.build().unwrap();
        let lf = LoopForest::of(&f);
        assert!(lf.loops.is_empty());
        assert_eq!(lf.depth(e), 0);
        assert!(lf.innermost_containing(x).is_none());
    }
}
