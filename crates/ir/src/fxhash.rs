//! A small, deterministic, non-cryptographic hasher for hot compiler maps.
//!
//! The compiler and simulators key maps almost exclusively by small integers
//! ([`crate::ids::Reg`], [`crate::ids::BlockId`], addresses, value numbers).
//! `std`'s default SipHash is DoS-resistant but costs an order of magnitude
//! more per lookup than these workloads need; the multiply-rotate scheme
//! below (the classic "Fx" hash used by rustc) is a couple of arithmetic
//! instructions per word. It is used for the liveness dataflow sets, the
//! value-numbering tables, and the simulators' memory images — all inputs
//! are compiler-internal, so hash-flooding is not a concern.
//!
//! Determinism note: unlike `RandomState`, this hasher is stable across
//! processes, which *reduces* run-to-run variation in any code that iterates
//! a map (no current pass depends on iteration order, but stable beats
//! seeded-random if one ever slips in).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from Fx hash (64-bit golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the buffer; the tail is padded into one word.
        // The length is mixed in first so a slice and its zero-extension
        // hash differently (the padding alone cannot distinguish them).
        self.add_to_hash(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let h = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let mut s: FxHashSet<i64> = FxHashSet::default();
        s.insert(-7);
        assert!(s.contains(&-7));
        assert!(!s.contains(&7));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let h = |b: &[u8]| {
            let mut h = FxHasher::default();
            h.write(b);
            h.finish()
        };
        assert_eq!(h(b"hello world"), h(b"hello world"));
        assert_ne!(h(b"hello world"), h(b"hello worle"));
        // Different lengths with same prefix must differ.
        assert_ne!(h(b"abc"), h(b"abc\0"));
    }
}
