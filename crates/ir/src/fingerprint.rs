//! CFG-shape fingerprints: a coarse, renaming-stable summary of a
//! function's control structure and profile skew.
//!
//! Two functions that differ only in register numbering, block-id
//! numbering, or instruction payloads — but share the same loop nesting,
//! branch fan-out, size class, and profile concentration — fingerprint
//! identically. The compile service uses this to cache *policy decisions*
//! (which block-selection policy won a tournament) across functions of the
//! same shape, the way ahead-of-time provers specialize configurations by
//! circuit shape: the exact content-addressed cache still keys full
//! compile results, while the shape cache keys the much smaller space of
//! "what worked on CFGs that look like this".
//!
//! Every component is a multiset or a bucket, never an id- or
//! iteration-order-dependent value:
//!
//! * **loop-nest depth histogram** — how many blocks sit at loop depth
//!   0, 1, 2, … (natural loops; depth 0 = not in any loop);
//! * **branch fan-out histogram** — how many blocks have 0, 1, 2, … exits;
//! * **block-count bucket** — `log2` of the live block count;
//! * **profile-skew bucket** — how concentrated the dynamic block counts
//!   are in the single hottest block (cold/uniform/warm/hot/spiky).

use crate::function::Function;
use crate::fxhash::FxHasher;
use crate::loops::LoopForest;
use crate::profile::ProfileData;
use std::hash::Hasher;

/// Histogram arms for loop depth and fan-out; deeper/wider lands in the
/// last arm.
const HIST_ARMS: usize = 8;

/// A function's CFG shape: the inputs to [`CfgShape::fingerprint`],
/// exposed so diagnostics can explain *why* two functions share a shape.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CfgShape {
    /// `loop_depth_hist[d]` = blocks at natural-loop depth `d` (arm
    /// `HIST_ARMS - 1` collects everything deeper).
    pub loop_depth_hist: [u32; HIST_ARMS],
    /// `fanout_hist[k]` = blocks with `k` exits (last arm collects wider).
    pub fanout_hist: [u32; HIST_ARMS],
    /// `floor(log2(live blocks))`, 0 for an empty or single-block function.
    pub block_bucket: u32,
    /// Profile concentration: the hottest block's share of all dynamic
    /// block executions, bucketed (0 = unprofiled, then ≤1/8, ≤1/4, ≤1/2,
    /// ≤3/4, >3/4).
    pub skew_bucket: u32,
}

impl CfgShape {
    /// Measure the shape of `f` under `profile`.
    ///
    /// Deterministic and invariant under register renaming and block-id
    /// permutation: every component is computed from per-block properties
    /// aggregated as a multiset, so neither numbering can leak in. The
    /// profile must be keyed consistently with `f`'s block ids (the same
    /// requirement every other profile consumer has).
    pub fn of(f: &Function, profile: &ProfileData) -> CfgShape {
        let forest = LoopForest::of(f);
        let mut loop_depth_hist = [0u32; HIST_ARMS];
        let mut fanout_hist = [0u32; HIST_ARMS];
        let mut blocks = 0u32;
        for (id, blk) in f.blocks() {
            blocks += 1;
            loop_depth_hist[forest.depth(id).min(HIST_ARMS - 1)] += 1;
            fanout_hist[blk.exits.len().min(HIST_ARMS - 1)] += 1;
        }
        let block_bucket = if blocks == 0 {
            0
        } else {
            31 - blocks.leading_zeros()
        };

        let total: u64 = profile.block_counts.values().sum();
        let hottest: u64 = profile.block_counts.values().copied().max().unwrap_or(0);
        // hottest/total in eighths, then coarsened to 5 arms (0 = no
        // profile at all).
        let skew_bucket = match (hottest * 8).checked_div(total) {
            None => 0,
            Some(0..=1) => 1, // ≤ 1/8: flat profile
            Some(2) => 2,     // ≤ 1/4
            Some(3..=4) => 3, // ≤ 1/2
            Some(5..=6) => 4, // ≤ 3/4
            Some(_) => 5,     // one dominant block
        };

        CfgShape {
            loop_depth_hist,
            fanout_hist,
            block_bucket,
            skew_bucket,
        }
    }

    /// Deepest loop nest observed (the largest non-empty histogram arm).
    pub fn max_loop_depth(&self) -> usize {
        self.loop_depth_hist
            .iter()
            .rposition(|&n| n > 0)
            .unwrap_or(0)
    }

    /// Coarse, *bounded* shape class for coverage maps: which histogram
    /// arms are occupied (not how heavily), plus the block and skew
    /// buckets. Two functions share a class when their CFGs have the same
    /// kinds of structure — the same loop depths and fan-out widths
    /// present, a similar size, a similar profile concentration — even if
    /// the block counts differ. Unlike [`CfgShape::fingerprint`] (which is
    /// effectively unique per function and would make "new shape" trivially
    /// true forever), the class space is small enough for a fuzzing
    /// campaign to saturate.
    pub fn class(&self) -> u64 {
        let mut bits = 0u64;
        for (i, &n) in self.loop_depth_hist.iter().enumerate() {
            if n > 0 {
                bits |= 1 << i;
            }
        }
        for (i, &n) in self.fanout_hist.iter().enumerate() {
            if n > 0 {
                bits |= 1 << (HIST_ARMS + i);
            }
        }
        bits | u64::from(self.block_bucket.min(15)) << 16 | u64::from(self.skew_bucket) << 20
    }

    /// Hash the shape to a stable 64-bit key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        for n in self.loop_depth_hist {
            h.write_u32(n);
        }
        for n in self.fanout_hist {
            h.write_u32(n);
        }
        h.write_u32(self.block_bucket);
        h.write_u32(self.skew_bucket);
        h.finish()
    }
}

/// [`CfgShape::of`] composed with [`CfgShape::fingerprint`].
pub fn shape_fingerprint(f: &Function, profile: &ProfileData) -> u64 {
    CfgShape::of(f, profile).fingerprint()
}

/// [`CfgShape::of`] composed with [`CfgShape::class`].
pub fn shape_class(f: &Function, profile: &ProfileData) -> u64 {
    CfgShape::of(f, profile).class()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::Operand;

    /// `depth` nested counted loops around a trivial body.
    fn nest(depth: usize) -> Function {
        let mut fb = FunctionBuilder::new("nest", 1);
        let entry = fb.create_block();
        let exit = fb.create_block();
        let mut headers = Vec::new();
        for _ in 0..depth {
            headers.push((fb.create_block(), fb.create_block()));
        }
        fb.switch_to(entry);
        let n = fb.param(0);
        if depth == 0 {
            fb.ret(Some(Operand::Reg(n)));
            return fb.build().unwrap();
        }
        let counters: Vec<_> = (0..depth).map(|_| fb.mov(Operand::Imm(0))).collect();
        fb.jump(headers[0].0);
        for d in 0..depth {
            let (header, latch) = headers[d];
            fb.switch_to(header);
            let c = fb.cmp_lt(Operand::Reg(counters[d]), Operand::Reg(n));
            let inner = if d + 1 < depth {
                headers[d + 1].0
            } else {
                latch
            };
            fb.branch(c, inner, if d == 0 { exit } else { headers[d - 1].1 });
            fb.switch_to(latch);
            let inc = fb.add(Operand::Reg(counters[d]), Operand::Imm(1));
            fb.mov_to(counters[d], Operand::Reg(inc));
            fb.jump(header);
        }
        fb.switch_to(exit);
        fb.ret(Some(Operand::Reg(n)));
        fb.build().unwrap()
    }

    #[test]
    fn deeper_nests_fingerprint_differently() {
        let p = ProfileData::default();
        let f1 = shape_fingerprint(&nest(1), &p);
        let f2 = shape_fingerprint(&nest(2), &p);
        let f3 = shape_fingerprint(&nest(3), &p);
        assert_ne!(f1, f2);
        assert_ne!(f2, f3);
        assert_ne!(f1, f3);
    }

    #[test]
    fn shape_is_stable_across_calls() {
        let f = nest(2);
        let p = ProfileData::default();
        assert_eq!(shape_fingerprint(&f, &p), shape_fingerprint(&f, &p));
        let shape = CfgShape::of(&f, &p);
        assert_eq!(shape.max_loop_depth(), 2);
    }

    #[test]
    fn class_tracks_occupancy_not_counts() {
        let p = ProfileData::default();
        let a = CfgShape::of(&nest(1), &p);
        let b = CfgShape::of(&nest(2), &p);
        assert_ne!(a.class(), b.class(), "extra nesting depth is a new class");
        // Scaling arm counts changes the fingerprint but not the class:
        // the class sees which kinds of structure exist, not how many.
        let mut c = a.clone();
        for n in c.loop_depth_hist.iter_mut() {
            if *n > 0 {
                *n *= 3;
            }
        }
        assert_ne!(c.fingerprint(), a.fingerprint());
        assert_eq!(c.class(), a.class());
    }

    #[test]
    fn skew_bucket_tracks_profile_concentration() {
        let f = nest(1);
        let flat = ProfileData::default();
        let mut hot = ProfileData::default();
        for id in f.block_ids() {
            hot.block_counts.insert(id, 1);
        }
        *hot.block_counts.values_mut().next().unwrap() = 1_000;
        assert_ne!(
            CfgShape::of(&f, &flat).skew_bucket,
            CfgShape::of(&f, &hot).skew_bucket
        );
    }
}
