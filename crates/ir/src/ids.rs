//! Newtype identifiers for IR entities.

use std::fmt;

/// A virtual register.
///
/// Registers are function-scoped. By convention, registers `r0..r{params}`
/// hold the function arguments on entry. The TRIPS constraint model assigns
/// register `r` to bank `r % 4` (see `chf-core`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// Index of this register as `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The TRIPS register bank this register maps to.
    pub fn bank(self) -> u32 {
        self.0 % 4
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a block within a [`crate::Function`].
///
/// Block ids are stable across block removal: removing a block leaves a hole
/// rather than shifting other ids, so analyses can cache ids safely within a
/// transformation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index of this block id as `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_bank() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(Reg(7).bank(), 3);
        assert_eq!(Reg(8).bank(), 0);
        assert_eq!(Reg(3).index(), 3);
    }

    #[test]
    fn block_display() {
        assert_eq!(BlockId(12).to_string(), "B12");
        assert_eq!(BlockId(12).index(), 12);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(Reg(1) < Reg(2));
        assert!(BlockId(0) < BlockId(1));
    }
}
