//! Liveness analysis.
//!
//! Used for two purposes: dead-code elimination (`chf-opt`) and computing the
//! TRIPS block register-interface counts — how many registers a block reads
//! from the register file (live-in uses) and writes to it (defs that are
//! live-out), which the structural constraints bound per bank (paper §2).
//!
//! Predicated definitions are *may*-defs: they do not kill liveness, because
//! on a falsely-predicated path the previous value remains live.
//!
//! ## Representation
//!
//! Convergent formation calls [`Liveness::compute`] on every merge trial
//! (once for the speculation-safety set, once for the structural-constraint
//! check), so this is one of the hottest paths in the compiler. The solver
//! therefore works on dense per-block register bitsets — one `u64` word per
//! 64 registers — and the transfer function is three word-wide bit
//! operations per word instead of per-register hash probes. The solution is
//! *kept* in that form: accessors hand out [`RegSet`] views over the rows
//! (and [`RegSetBuf`] for the read/write intersections) rather than
//! materializing hash sets nobody asked for. Iteration order over a
//! [`RegSet`] is ascending register number, which is deterministic across
//! runs and platforms.

use crate::block::ExitTarget;
use crate::function::Function;
use crate::fxhash::FxHashSet;
use crate::ids::{BlockId, Reg};

/// Iterate the registers encoded in a word slice, in ascending order.
fn iter_words(words: &[u64]) -> impl Iterator<Item = Reg> + '_ {
    words.iter().enumerate().flat_map(|(w, &word)| {
        let mut rest = word;
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let bit = rest.trailing_zeros();
            rest &= rest - 1;
            Some(Reg((w * 64 + bit as usize) as u32))
        })
    })
}

/// A borrowed view of one liveness row (a set of registers).
///
/// Supports the operations the clients actually need — membership, count,
/// deterministic ascending iteration, and conversion to a hash set for
/// callers that go on to mutate the set.
#[derive(Clone, Copy, Debug)]
pub struct RegSet<'a> {
    words: &'a [u64],
}

impl<'a> RegSet<'a> {
    /// Whether `r` is in the set.
    #[inline]
    pub fn contains(&self, r: &Reg) -> bool {
        let i = r.index();
        match self.words.get(i / 64) {
            Some(w) => w >> (i % 64) & 1 != 0,
            None => false,
        }
    }

    /// Iterate the members in ascending register order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + 'a {
        iter_words(self.words)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Materialize into a hash set (for callers that mutate the result).
    pub fn to_set(&self) -> FxHashSet<Reg> {
        self.iter().collect()
    }
}

/// An owned register set, as returned by the intersection accessors
/// ([`Liveness::register_reads`] / [`Liveness::register_writes`]).
#[derive(Clone, Debug)]
pub struct RegSetBuf {
    words: Vec<u64>,
}

impl RegSetBuf {
    /// A borrowed view of this set.
    pub fn as_set(&self) -> RegSet<'_> {
        RegSet { words: &self.words }
    }

    /// Whether `r` is in the set.
    #[inline]
    pub fn contains(&self, r: &Reg) -> bool {
        self.as_set().contains(r)
    }

    /// Iterate the members in ascending register order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        iter_words(&self.words)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.as_set().len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.as_set().is_empty()
    }

    /// Materialize into a hash set.
    pub fn to_set(&self) -> FxHashSet<Reg> {
        self.iter().collect()
    }
}

/// Owning ascending-order iterator over a [`RegSetBuf`].
pub struct RegSetIntoIter {
    words: Vec<u64>,
    w: usize,
}

impl Iterator for RegSetIntoIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        while self.w < self.words.len() {
            let word = self.words[self.w];
            if word == 0 {
                self.w += 1;
                continue;
            }
            let bit = word.trailing_zeros();
            self.words[self.w] = word & (word - 1);
            return Some(Reg((self.w * 64 + bit as usize) as u32));
        }
        None
    }
}

impl IntoIterator for RegSetBuf {
    type Item = Reg;
    type IntoIter = RegSetIntoIter;

    fn into_iter(self) -> RegSetIntoIter {
        RegSetIntoIter {
            words: self.words,
            w: 0,
        }
    }
}

#[inline]
fn bit_set(row: &mut [u64], reg: Reg) {
    let i = reg.index();
    row[i / 64] |= 1u64 << (i % 64);
}

#[inline]
fn bit_get(row: &[u64], reg: Reg) -> bool {
    let i = reg.index();
    row[i / 64] >> (i % 64) & 1 != 0
}

/// Per-block `(upward-exposed uses, unconditional kills, all defs)` of
/// block `b`, written into the given bit rows.
fn block_summary(f: &Function, b: BlockId, gens: &mut [u64], kills: &mut [u64], defs: &mut [u64]) {
    let blk = f.block(b);
    for inst in &blk.insts {
        for u in inst.uses() {
            if !bit_get(kills, u) {
                bit_set(gens, u);
            }
        }
        if let Some(d) = inst.def() {
            bit_set(defs, d);
            if inst.pred.is_none() {
                bit_set(kills, d);
            }
        }
    }
    for e in &blk.exits {
        if let Some(p) = e.pred {
            if !bit_get(kills, p.reg) {
                bit_set(gens, p.reg);
            }
        }
        if let ExitTarget::Return(Some(op)) = e.target {
            if let Some(r) = op.as_reg() {
                if !bit_get(kills, r) {
                    bit_set(gens, r);
                }
            }
        }
    }
}

/// Sentinel for "no dense row" (hole or unknown block) in [`Liveness::index`].
const NO_ROW: u32 = u32::MAX;

// Section indices into the single bit buffer: `bits` holds five dense
// row-major matrices back to back, each `rows × words` u64s.
const SEC_GENS: usize = 0;
const SEC_KILLS: usize = 1;
const SEC_DEFS: usize = 2;
const SEC_IN: usize = 3;
const SEC_OUT: usize = 4;
const SECTIONS: usize = 5;

/// Per-block liveness sets.
///
/// All five per-block bit matrices (upward-exposed uses, kills, defs,
/// live-in, live-out) live in **one** allocation; formation computes a
/// `Liveness` per merge trial, so allocator traffic matters as much as the
/// solve itself.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Dense row index keyed by `BlockId::index()`; `NO_ROW` marks holes.
    index: Vec<u32>,
    words: usize,
    rows: usize,
    bits: Vec<u64>,
}

impl Liveness {
    /// Compute liveness for all live blocks of `f`.
    pub fn compute(f: &Function) -> Liveness {
        let nregs = f.reg_count() as usize;
        let words = nregs.max(1).div_ceil(64);
        let mut index = vec![NO_ROW; f.block_slots()];
        let ids: Vec<BlockId> = f.block_ids().collect();
        let n = ids.len();
        for (i, &b) in ids.iter().enumerate() {
            index[b.index()] = i as u32;
        }
        // Flat successor lists: rows `succ_off[i]..succ_off[i+1]` of `succ_flat`.
        let mut succ_off: Vec<u32> = Vec::with_capacity(n + 1);
        let mut succ_flat: Vec<u32> = Vec::new();
        succ_off.push(0);
        for &b in &ids {
            for s in f.block(b).successors() {
                if let Some(&row) = index.get(s.index()) {
                    if row != NO_ROW {
                        succ_flat.push(row);
                    }
                }
            }
            succ_off.push(succ_flat.len() as u32);
        }

        let sec = n * words;
        let mut bits = vec![0u64; SECTIONS * sec];
        {
            // Summaries fill the gens/kills/defs sections.
            let (gens, rest) = bits.split_at_mut(sec);
            let (kills, rest) = rest.split_at_mut(sec);
            let defs = &mut rest[..sec];
            for (i, &b) in ids.iter().enumerate() {
                let r = i * words..(i + 1) * words;
                block_summary(
                    f,
                    b,
                    &mut gens[r.clone()],
                    &mut kills[r.clone()],
                    &mut defs[r],
                );
            }
        }

        let mut out_buf = vec![0u64; words];
        let mut changed = true;
        while changed {
            changed = false;
            // Backward problem: iterate in reverse id order as a heuristic.
            for i in (0..n).rev() {
                out_buf.fill(0);
                for &s in &succ_flat[succ_off[i] as usize..succ_off[i + 1] as usize] {
                    let sb = SEC_IN * sec + s as usize * words;
                    for (w, o) in out_buf.iter_mut().enumerate() {
                        *o |= bits[sb + w];
                    }
                }
                // in = gen | (out & !kill); both updates in one word sweep.
                let base = i * words;
                for (w, &out_w) in out_buf.iter().enumerate() {
                    if bits[SEC_OUT * sec + base + w] != out_w {
                        bits[SEC_OUT * sec + base + w] = out_w;
                        changed = true;
                    }
                    let in_w = bits[SEC_GENS * sec + base + w]
                        | (out_w & !bits[SEC_KILLS * sec + base + w]);
                    if bits[SEC_IN * sec + base + w] != in_w {
                        bits[SEC_IN * sec + base + w] = in_w;
                        changed = true;
                    }
                }
            }
        }

        Liveness {
            index,
            words,
            rows: n,
            bits,
        }
    }

    #[inline]
    fn row(&self, section: usize, b: BlockId) -> &[u64] {
        let i = self.index[b.index()];
        debug_assert_ne!(i, NO_ROW, "no liveness row for {b}");
        let base = (section * self.rows + i as usize) * self.words;
        &self.bits[base..base + self.words]
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> RegSet<'_> {
        RegSet {
            words: self.row(SEC_IN, b),
        }
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> RegSet<'_> {
        RegSet {
            words: self.row(SEC_OUT, b),
        }
    }

    /// Register-file *reads* of block `b`: upward-exposed register uses.
    /// These are the values the block must fetch through TRIPS read
    /// instructions.
    pub fn register_reads(&self, b: BlockId) -> RegSetBuf {
        let ue = self.row(SEC_GENS, b);
        let li = self.row(SEC_IN, b);
        RegSetBuf {
            words: ue.iter().zip(li).map(|(a, b)| a & b).collect(),
        }
    }

    /// Register-file *writes* of block `b`: defs that are live past the
    /// block. These are the values the block must commit through TRIPS write
    /// instructions.
    pub fn register_writes(&self, b: BlockId) -> RegSetBuf {
        let d = self.row(SEC_DEFS, b);
        let lo = self.row(SEC_OUT, b);
        RegSetBuf {
            words: d.iter().zip(lo).map(|(a, b)| a & b).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{Instr, Operand, Pred};

    #[test]
    fn straight_line_reads_and_writes() {
        // entry: x = p0 + 1; jump b. b: return x
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(e);
        let x = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        fb.jump(b);
        fb.switch_to(b);
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in(e).contains(&Reg(0)));
        assert!(lv.live_out(e).contains(&x));
        assert_eq!(
            lv.register_reads(e).to_set(),
            [Reg(0)].into_iter().collect()
        );
        assert_eq!(lv.register_writes(e).to_set(), [x].into_iter().collect());
        assert_eq!(lv.register_reads(b).to_set(), [x].into_iter().collect());
        assert!(lv.register_writes(b).is_empty());
    }

    #[test]
    fn loop_carried_value_is_live_around() {
        // e: i=0; jump h. h: i=i+1; c = i<10; branch c h x. x: ret i
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        let h = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        fb.mov_to(i, Operand::Imm(1)); // placeholder, replaced after build
        let c = fb.cmp_lt(Operand::Reg(i), Operand::Imm(10));
        fb.branch(c, h, x);
        fb.switch_to(x);
        fb.ret(Some(Operand::Reg(i)));
        let mut f = fb.build().unwrap();
        // Rewrite h's first instruction to a real increment.
        f.block_mut(h).insts[0] = Instr::add(i, Operand::Reg(i), Operand::Imm(1));
        let lv = Liveness::compute(&f);
        assert!(lv.live_in(h).contains(&i));
        assert!(lv.live_out(h).contains(&i));
        assert!(lv.register_reads(h).contains(&i));
        assert!(lv.register_writes(h).contains(&i));
    }

    #[test]
    fn predicated_def_does_not_kill() {
        // entry: [p] x = 1; return x  — x is still live-in (may read old x)
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.param(0);
        let p = fb.param(1);
        fb.push(Instr::mov(x, Operand::Imm(1)).predicated(Pred::on_true(p)));
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in(e).contains(&x));
        assert!(lv.live_in(e).contains(&p));
    }

    #[test]
    fn unconditional_def_kills() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.param(0);
        fb.mov_to(x, Operand::Imm(1));
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        assert!(!lv.live_in(e).contains(&x));
    }

    #[test]
    fn exit_predicate_is_a_use() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let a = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(e);
        fb.branch(fb.param(0), a, b);
        fb.switch_to(a);
        fb.ret(None);
        fb.switch_to(b);
        fb.ret(None);
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in(e).contains(&Reg(0)));
    }

    #[test]
    fn regset_iteration_is_ascending_and_counts_match() {
        let mut fb = FunctionBuilder::new("f", 3);
        let e = fb.create_block();
        fb.switch_to(e);
        let s = fb.add(Operand::Reg(fb.param(0)), Operand::Reg(fb.param(1)));
        let t = fb.add(Operand::Reg(s), Operand::Reg(fb.param(2)));
        fb.ret(Some(Operand::Reg(t)));
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        let reads: Vec<Reg> = lv.register_reads(e).into_iter().collect();
        assert_eq!(reads, vec![Reg(0), Reg(1), Reg(2)]);
        assert_eq!(lv.register_reads(e).len(), 3);
        let mut sorted = reads.clone();
        sorted.sort();
        assert_eq!(reads, sorted);
    }
}
