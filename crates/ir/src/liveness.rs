//! Liveness analysis.
//!
//! Used for two purposes: dead-code elimination (`chf-opt`) and computing the
//! TRIPS block register-interface counts — how many registers a block reads
//! from the register file (live-in uses) and writes to it (defs that are
//! live-out), which the structural constraints bound per bank (paper §2).
//!
//! Predicated definitions are *may*-defs: they do not kill liveness, because
//! on a falsely-predicated path the previous value remains live.

use crate::block::ExitTarget;
use crate::function::Function;
use crate::ids::{BlockId, Reg};
use std::collections::{HashMap, HashSet};

/// Per-block liveness sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: HashMap<BlockId, HashSet<Reg>>,
    live_out: HashMap<BlockId, HashSet<Reg>>,
    upward_exposed: HashMap<BlockId, HashSet<Reg>>,
    defs: HashMap<BlockId, HashSet<Reg>>,
}

/// `(upward-exposed uses, unconditional kills, all defs)` of a block.
fn block_summary(f: &Function, b: BlockId) -> (HashSet<Reg>, HashSet<Reg>, HashSet<Reg>) {
    let blk = f.block(b);
    let mut gen: HashSet<Reg> = HashSet::new();
    let mut kill: HashSet<Reg> = HashSet::new();
    let mut defs: HashSet<Reg> = HashSet::new();
    for i in &blk.insts {
        for u in i.uses() {
            if !kill.contains(&u) {
                gen.insert(u);
            }
        }
        if let Some(d) = i.def() {
            defs.insert(d);
            if i.pred.is_none() {
                kill.insert(d);
            }
        }
    }
    for e in &blk.exits {
        if let Some(p) = e.pred {
            if !kill.contains(&p.reg) {
                gen.insert(p.reg);
            }
        }
        if let ExitTarget::Return(Some(op)) = e.target {
            if let Some(r) = op.as_reg() {
                if !kill.contains(&r) {
                    gen.insert(r);
                }
            }
        }
    }
    (gen, kill, defs)
}

impl Liveness {
    /// Compute liveness for all live blocks of `f`.
    pub fn compute(f: &Function) -> Liveness {
        let ids: Vec<BlockId> = f.block_ids().collect();
        let mut gens = HashMap::new();
        let mut kills = HashMap::new();
        let mut defs_map = HashMap::new();
        for &b in &ids {
            let (g, k, d) = block_summary(f, b);
            gens.insert(b, g);
            kills.insert(b, k);
            defs_map.insert(b, d);
        }
        let mut live_in: HashMap<BlockId, HashSet<Reg>> =
            ids.iter().map(|b| (*b, HashSet::new())).collect();
        let mut live_out: HashMap<BlockId, HashSet<Reg>> =
            ids.iter().map(|b| (*b, HashSet::new())).collect();

        let mut changed = true;
        while changed {
            changed = false;
            // Backward problem: iterate in reverse id order as a heuristic.
            for &b in ids.iter().rev() {
                let mut out: HashSet<Reg> = HashSet::new();
                for s in f.block(b).successors() {
                    if let Some(li) = live_in.get(&s) {
                        out.extend(li.iter().copied());
                    }
                }
                let mut inn: HashSet<Reg> = gens[&b].clone();
                for r in out.iter() {
                    if !kills[&b].contains(r) {
                        inn.insert(*r);
                    }
                }
                if out != live_out[&b] {
                    live_out.insert(b, out);
                    changed = true;
                }
                if inn != live_in[&b] {
                    live_in.insert(b, inn);
                    changed = true;
                }
            }
        }

        Liveness {
            live_in,
            live_out,
            upward_exposed: gens,
            defs: defs_map,
        }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_in[&b]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_out[&b]
    }

    /// Register-file *reads* of block `b`: upward-exposed register uses.
    /// These are the values the block must fetch through TRIPS read
    /// instructions.
    pub fn register_reads(&self, b: BlockId) -> HashSet<Reg> {
        self.upward_exposed[&b]
            .intersection(&self.live_in[&b])
            .copied()
            .collect()
    }

    /// Register-file *writes* of block `b`: defs that are live past the
    /// block. These are the values the block must commit through TRIPS write
    /// instructions.
    pub fn register_writes(&self, b: BlockId) -> HashSet<Reg> {
        self.defs[&b]
            .intersection(&self.live_out[&b])
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{Instr, Operand, Pred};

    #[test]
    fn straight_line_reads_and_writes() {
        // entry: x = p0 + 1; jump b. b: return x
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(e);
        let x = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        fb.jump(b);
        fb.switch_to(b);
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in(e).contains(&Reg(0)));
        assert!(lv.live_out(e).contains(&x));
        assert_eq!(lv.register_reads(e), HashSet::from([Reg(0)]));
        assert_eq!(lv.register_writes(e), HashSet::from([x]));
        assert_eq!(lv.register_reads(b), HashSet::from([x]));
        assert!(lv.register_writes(b).is_empty());
    }

    #[test]
    fn loop_carried_value_is_live_around() {
        // e: i=0; jump h. h: i=i+1; c = i<10; branch c h x. x: ret i
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        let h = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        fb.mov_to(i, Operand::Imm(1)); // placeholder, replaced after build
        let c = fb.cmp_lt(Operand::Reg(i), Operand::Imm(10));
        fb.branch(c, h, x);
        fb.switch_to(x);
        fb.ret(Some(Operand::Reg(i)));
        let mut f = fb.build().unwrap();
        // Rewrite h's first instruction to a real increment.
        f.block_mut(h).insts[0] = Instr::add(i, Operand::Reg(i), Operand::Imm(1));
        let lv = Liveness::compute(&f);
        assert!(lv.live_in(h).contains(&i));
        assert!(lv.live_out(h).contains(&i));
        assert!(lv.register_reads(h).contains(&i));
        assert!(lv.register_writes(h).contains(&i));
    }

    #[test]
    fn predicated_def_does_not_kill() {
        // entry: [p] x = 1; return x  — x is still live-in (may read old x)
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.param(0);
        let p = fb.param(1);
        fb.push(Instr::mov(x, Operand::Imm(1)).predicated(Pred::on_true(p)));
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in(e).contains(&x));
        assert!(lv.live_in(e).contains(&p));
    }

    #[test]
    fn unconditional_def_kills() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.param(0);
        fb.mov_to(x, Operand::Imm(1));
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        assert!(!lv.live_in(e).contains(&x));
    }

    #[test]
    fn exit_predicate_is_a_use() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let a = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(e);
        fb.branch(fb.param(0), a, b);
        fb.switch_to(a);
        fb.ret(None);
        fb.switch_to(b);
        fb.ret(None);
        let f = fb.build().unwrap();
        let lv = Liveness::compute(&f);
        assert!(lv.live_in(e).contains(&Reg(0)));
    }
}
