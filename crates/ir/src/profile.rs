//! Execution profiles: block/edge frequencies and loop trip-count histograms.
//!
//! Block selection policies (paper §5) consult edge frequencies; the peeling
//! policy additionally consults trip-count histograms ("the compiler can use
//! loop trip count histograms to augment an edge frequency profile").
//! Profiles are gathered by running the functional simulator (`chf-sim`) on
//! the basic-block form of a program — self-profiling, matching the paper's
//! use of training inputs.

use crate::function::Function;
use crate::ids::BlockId;
use std::collections::{BTreeMap, HashMap};

/// Histogram of loop trip counts for a single loop header.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TripHistogram {
    /// `trip count → number of loop entries that iterated exactly that many
    /// times`.
    pub counts: BTreeMap<u64, u64>,
}

impl TripHistogram {
    /// Record one loop visit that performed `trips` iterations.
    pub fn record(&mut self, trips: u64) {
        *self.counts.entry(trips).or_insert(0) += 1;
    }

    /// Total number of loop visits recorded (saturating: a corrupted or
    /// adversarial profile with near-`u64::MAX` counts must not abort the
    /// compiler, merely skew the statistics it already cannot trust).
    pub fn visits(&self) -> u64 {
        self.counts
            .values()
            .fold(0u64, |acc, n| acc.saturating_add(*n))
    }

    /// The most common trip count, if any visits were recorded.
    pub fn mode(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by_key(|(trips, n)| (**n, std::cmp::Reverse(**trips)))
            .map(|(t, _)| *t)
    }

    /// Mean trip count (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let visits = self.visits();
        if visits == 0 {
            return 0.0;
        }
        // Saturating accumulation: trip counts injected by the fault
        // harness (and, in principle, merged multi-run profiles) can
        // overflow `u64` multiplication, which panics in debug builds.
        let total = self
            .counts
            .iter()
            .fold(0u64, |acc, (t, n)| acc.saturating_add(t.saturating_mul(*n)));
        total as f64 / visits as f64
    }

    /// Fraction of visits with trip count ≥ `k`.
    pub fn fraction_at_least(&self, k: u64) -> f64 {
        let visits = self.visits();
        if visits == 0 {
            return 0.0;
        }
        let at_least = self
            .counts
            .iter()
            .filter(|(t, _)| **t >= k)
            .fold(0u64, |acc, (_, n)| acc.saturating_add(*n));
        at_least as f64 / visits as f64
    }
}

/// Raw profile data measured on one program run (or merged over runs).
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    /// Dynamic execution count per block.
    pub block_counts: HashMap<BlockId, u64>,
    /// Dynamic taken count per `(block, exit index)`.
    pub exit_counts: HashMap<(BlockId, usize), u64>,
    /// Trip-count histogram per loop header.
    pub trip_histograms: HashMap<BlockId, TripHistogram>,
}

impl ProfileData {
    /// Merge another profile into this one (summing counts; saturating so
    /// adversarial profiles cannot overflow-panic the compiler).
    pub fn merge(&mut self, other: &ProfileData) {
        for (b, n) in &other.block_counts {
            let e = self.block_counts.entry(*b).or_insert(0);
            *e = e.saturating_add(*n);
        }
        for (k, n) in &other.exit_counts {
            let e = self.exit_counts.entry(*k).or_insert(0);
            *e = e.saturating_add(*n);
        }
        for (b, h) in &other.trip_histograms {
            let dst = self.trip_histograms.entry(*b).or_default();
            for (t, n) in &h.counts {
                let e = dst.counts.entry(*t).or_insert(0);
                *e = e.saturating_add(*n);
            }
        }
    }

    /// Stamp frequencies onto the function: block `freq` and exit `count`
    /// fields. Blocks and exits absent from the profile get 0.
    pub fn apply(&self, f: &mut Function) {
        let ids: Vec<BlockId> = f.block_ids().collect();
        for b in ids {
            let freq = self.block_counts.get(&b).copied().unwrap_or(0) as f64;
            let blk = f.block_mut(b);
            blk.freq = freq;
            for (i, e) in blk.exits.iter_mut().enumerate() {
                e.count = self.exit_counts.get(&(b, i)).copied().unwrap_or(0) as f64;
            }
        }
    }

    /// Trip histogram for `header`, if one was recorded.
    pub fn trip_histogram(&self, header: BlockId) -> Option<&TripHistogram> {
        self.trip_histograms.get(&header)
    }

    /// Profiled execution count of `b` (0 when unprofiled).
    pub fn block_count(&self, b: BlockId) -> u64 {
        self.block_counts.get(&b).copied().unwrap_or(0)
    }

    /// Profiled taken count of exit `exit` of block `b` (0 when
    /// unprofiled) — the raw edge weight the profile-guided orderings
    /// consume before [`ProfileData::apply`] stamps it onto the CFG.
    pub fn edge_count(&self, b: BlockId, exit: usize) -> u64 {
        self.exit_counts.get(&(b, exit)).copied().unwrap_or(0)
    }

    /// Index of the hottest recorded out-edge of `b`, if any edge of `b`
    /// was profiled. Deterministic: ties break toward the lowest exit
    /// index, so profile-guided orderings built on top stay byte-stable.
    pub fn hottest_exit(&self, b: BlockId) -> Option<usize> {
        self.exit_counts
            .iter()
            .filter(|((blk, _), n)| *blk == b && **n > 0)
            .map(|((_, i), n)| (*i, *n))
            .max_by(|(i, n), (j, m)| n.cmp(m).then(j.cmp(i)))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn histogram_statistics() {
        let mut h = TripHistogram::default();
        for _ in 0..7 {
            h.record(3);
        }
        for _ in 0..2 {
            h.record(10);
        }
        h.record(1);
        assert_eq!(h.visits(), 10);
        assert_eq!(h.mode(), Some(3));
        assert!((h.mean() - (7 * 3 + 2 * 10 + 1) as f64 / 10.0).abs() < 1e-9);
        assert!((h.fraction_at_least(3) - 0.9).abs() < 1e-9);
        assert!((h.fraction_at_least(11) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram() {
        let h = TripHistogram::default();
        assert_eq!(h.mode(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_at_least(1), 0.0);
    }

    #[test]
    fn apply_stamps_blocks_and_exits() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let a = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(e);
        fb.branch(fb.param(0), a, b);
        fb.switch_to(a);
        fb.ret(None);
        fb.switch_to(b);
        fb.ret(None);
        let mut f = fb.build().unwrap();

        let mut p = ProfileData::default();
        p.block_counts.insert(e, 100);
        p.block_counts.insert(a, 80);
        p.exit_counts.insert((e, 0), 80);
        p.exit_counts.insert((e, 1), 20);
        p.apply(&mut f);
        assert_eq!(f.block(e).freq, 100.0);
        assert_eq!(f.block(a).freq, 80.0);
        assert_eq!(f.block(b).freq, 0.0);
        assert!((f.block(e).exit_probability(0) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn raw_count_accessors() {
        let mut p = ProfileData::default();
        p.block_counts.insert(BlockId(3), 44);
        p.exit_counts.insert((BlockId(3), 0), 11);
        p.exit_counts.insert((BlockId(3), 1), 33);
        p.exit_counts.insert((BlockId(4), 0), 99);
        assert_eq!(p.block_count(BlockId(3)), 44);
        assert_eq!(p.block_count(BlockId(9)), 0);
        assert_eq!(p.edge_count(BlockId(3), 1), 33);
        assert_eq!(p.edge_count(BlockId(9), 0), 0);
        assert_eq!(p.hottest_exit(BlockId(3)), Some(1));
        assert_eq!(p.hottest_exit(BlockId(4)), Some(0));
        assert_eq!(p.hottest_exit(BlockId(9)), None);
    }

    #[test]
    fn hottest_exit_ties_break_low() {
        let mut p = ProfileData::default();
        p.exit_counts.insert((BlockId(0), 2), 7);
        p.exit_counts.insert((BlockId(0), 0), 7);
        p.exit_counts.insert((BlockId(0), 1), 7);
        assert_eq!(p.hottest_exit(BlockId(0)), Some(0));
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = ProfileData::default();
        a.block_counts.insert(BlockId(0), 5);
        a.exit_counts.insert((BlockId(0), 0), 5);
        a.trip_histograms.entry(BlockId(1)).or_default().record(2);
        let mut b = ProfileData::default();
        b.block_counts.insert(BlockId(0), 3);
        b.trip_histograms.entry(BlockId(1)).or_default().record(2);
        a.merge(&b);
        assert_eq!(a.block_counts[&BlockId(0)], 8);
        assert_eq!(a.trip_histograms[&BlockId(1)].counts[&2], 2);
    }
}
