//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! Storage is dense: immediate dominators and RPO numbers live in flat
//! vectors keyed by `BlockId::index()` (with a sentinel for unreachable
//! blocks and holes), so the hot `dominates` chain walk is pure array
//! indexing. Convergent formation recomputes the tree once per committed
//! merge and queries it on every trial, so lookups dominate construction.

use crate::cfg::{reverse_postorder, successors};
use crate::function::Function;
use crate::ids::BlockId;

/// Sentinel for "not in the tree" (unreachable block or hole).
const ABSENT: u32 = u32::MAX;

/// Immediate-dominator tree of the reachable CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b.index()]` is the immediate dominator's slot, or `ABSENT`.
    /// The entry's idom is itself.
    idom: Vec<u32>,
    /// `rpo_index[b.index()]` is the RPO number, or `ABSENT` if unreachable.
    rpo_index: Vec<u32>,
    /// Reachable blocks in reverse postorder.
    rpo: Vec<BlockId>,
    entry: BlockId,
}

impl DomTree {
    /// Compute dominators for the reachable portion of `f`.
    pub fn compute(f: &Function) -> DomTree {
        let slots = f.block_slots();
        let rpo = reverse_postorder(f);
        let mut rpo_index = vec![ABSENT; slots];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i as u32;
        }

        // Predecessor lists restricted to reachable blocks, flat-packed in
        // RPO order: preds of rpo[i] live at pred_flat[off[i]..off[i+1]].
        let mut pred_off: Vec<u32> = vec![0; rpo.len() + 1];
        for &b in &rpo {
            for s in successors(f, b) {
                if let Some(&i) = rpo_index.get(s.index()) {
                    if i != ABSENT {
                        pred_off[i as usize + 1] += 1;
                    }
                }
            }
        }
        for i in 1..pred_off.len() {
            pred_off[i] += pred_off[i - 1];
        }
        let mut cursor: Vec<u32> = pred_off[..rpo.len()].to_vec();
        let mut pred_flat: Vec<BlockId> = vec![BlockId(0); *pred_off.last().unwrap() as usize];
        for &b in &rpo {
            for s in successors(f, b) {
                let i = rpo_index[s.index()];
                if i != ABSENT {
                    pred_flat[cursor[i as usize] as usize] = b;
                    cursor[i as usize] += 1;
                }
            }
        }

        let mut idom = vec![ABSENT; slots];
        idom[f.entry.index()] = f.entry.index() as u32;

        let intersect = |idom: &[u32], rpo_index: &[u32], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a] as usize;
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b] as usize;
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for (i, &b) in rpo.iter().enumerate().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &pred_flat[pred_off[i] as usize..pred_off[i + 1] as usize] {
                    // Only consider already-processed preds.
                    if idom[p.index()] == ABSENT {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p.index(),
                        Some(cur) => intersect(&idom, &rpo_index, cur, p.index()),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != ni as u32 {
                        idom[b.index()] = ni as u32;
                        changed = true;
                    }
                }
            }
        }

        DomTree {
            idom,
            rpo_index,
            rpo,
            entry: f.entry,
        }
    }

    #[inline]
    fn in_tree(&self, b: BlockId) -> bool {
        self.idom.get(b.index()).is_some_and(|&i| i != ABSENT)
    }

    /// Immediate dominator of `b` (the entry's idom is itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom.get(b.index()) {
            Some(&i) if i != ABSENT => Some(BlockId(i)),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.in_tree(a) || !self.in_tree(b) {
            return false;
        }
        let target = a.index() as u32;
        let entry = self.entry.index() as u32;
        let mut cur = b.index() as u32;
        loop {
            if cur == target {
                return true;
            }
            if cur == entry {
                return false;
            }
            cur = self.idom[cur as usize];
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Whether `b` was reachable when the tree was computed.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index.get(b.index()).is_some_and(|&i| i != ABSENT)
    }

    /// Blocks in reverse postorder (the order used during computation).
    pub fn rpo(&self) -> Vec<BlockId> {
        self.rpo.clone()
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: BlockId) -> Vec<BlockId> {
        let p = b.index() as u32;
        self.idom
            .iter()
            .enumerate()
            .filter(|&(c, &i)| i == p && c != b.index() && i != ABSENT)
            .map(|(c, _)| BlockId(c as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::Operand;

    /// Classic diamond: e -> {a, b} -> j
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let a = fb.create_block();
        let b = fb.create_block();
        let j = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c, a, b);
        fb.switch_to(a);
        fb.jump(j);
        fb.switch_to(b);
        fb.jump(j);
        fb.switch_to(j);
        fb.ret(None);
        fb.build().unwrap()
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let d = DomTree::compute(&f);
        let (e, a, b, j) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(d.idom(a), Some(e));
        assert_eq!(d.idom(b), Some(e));
        assert_eq!(d.idom(j), Some(e));
        assert!(d.dominates(e, j));
        assert!(!d.dominates(a, j));
        assert!(d.dominates(j, j));
        assert!(!d.strictly_dominates(j, j));
    }

    #[test]
    fn loop_header_dominates_body() {
        // e -> h; h -> body | exit; body -> h
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(10));
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.build().unwrap();
        let d = DomTree::compute(&f);
        assert!(d.dominates(h, body));
        assert!(d.dominates(h, exit));
        assert_eq!(d.idom(body), Some(h));
        assert_eq!(d.children(h), vec![body, exit]);
    }

    #[test]
    fn unreachable_blocks_not_in_tree() {
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        let dead = fb.create_block();
        fb.switch_to(e);
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        let f = fb.build().unwrap();
        let d = DomTree::compute(&f);
        assert!(!d.is_reachable(dead));
        assert!(!d.dominates(e, dead));
    }

    #[test]
    fn rpo_roundtrip() {
        let f = diamond();
        let d = DomTree::compute(&f);
        let rpo = d.rpo();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
    }
}
