//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::{predecessors, reverse_postorder};
use crate::function::Function;
use crate::ids::BlockId;
use std::collections::HashMap;

/// Immediate-dominator tree of the reachable CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: HashMap<BlockId, BlockId>,
    rpo_index: HashMap<BlockId, usize>,
    entry: BlockId,
}

impl DomTree {
    /// Compute dominators for the reachable portion of `f`.
    pub fn compute(f: &Function) -> DomTree {
        let rpo = reverse_postorder(f);
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let preds = predecessors(f);
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(f.entry, f.entry);

        let intersect = |idom: &HashMap<BlockId, BlockId>,
                         rpo_index: &HashMap<BlockId, usize>,
                         mut a: BlockId,
                         mut b: BlockId| {
            while a != b {
                while rpo_index[&a] > rpo_index[&b] {
                    a = idom[&a];
                }
                while rpo_index[&b] > rpo_index[&a] {
                    b = idom[&b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.get(&b).into_iter().flatten() {
                    // Only consider reachable, already-processed preds.
                    if !rpo_index.contains_key(&p) || !idom.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }

        DomTree {
            idom,
            rpo_index,
            entry: f.entry,
        }
    }

    /// Immediate dominator of `b` (the entry's idom is itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(&b).copied()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.idom.contains_key(&b) || !self.idom.contains_key(&a) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[&cur];
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Whether `b` was reachable when the tree was computed.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index.contains_key(&b)
    }

    /// Blocks in reverse postorder (the order used during computation).
    pub fn rpo(&self) -> Vec<BlockId> {
        let mut v: Vec<(usize, BlockId)> =
            self.rpo_index.iter().map(|(b, i)| (*i, *b)).collect();
        v.sort_unstable();
        v.into_iter().map(|(_, b)| b).collect()
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: BlockId) -> Vec<BlockId> {
        let mut cs: Vec<BlockId> = self
            .idom
            .iter()
            .filter(|(c, p)| **p == b && **c != b)
            .map(|(c, _)| *c)
            .collect();
        cs.sort_unstable();
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::Operand;

    /// Classic diamond: e -> {a, b} -> j
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let a = fb.create_block();
        let b = fb.create_block();
        let j = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c, a, b);
        fb.switch_to(a);
        fb.jump(j);
        fb.switch_to(b);
        fb.jump(j);
        fb.switch_to(j);
        fb.ret(None);
        fb.build().unwrap()
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let d = DomTree::compute(&f);
        let (e, a, b, j) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(d.idom(a), Some(e));
        assert_eq!(d.idom(b), Some(e));
        assert_eq!(d.idom(j), Some(e));
        assert!(d.dominates(e, j));
        assert!(!d.dominates(a, j));
        assert!(d.dominates(j, j));
        assert!(!d.strictly_dominates(j, j));
    }

    #[test]
    fn loop_header_dominates_body() {
        // e -> h; h -> body | exit; body -> h
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(Operand::Reg(fb.param(0)), Operand::Imm(10));
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.build().unwrap();
        let d = DomTree::compute(&f);
        assert!(d.dominates(h, body));
        assert!(d.dominates(h, exit));
        assert_eq!(d.idom(body), Some(h));
        assert_eq!(d.children(h), vec![body, exit]);
    }

    #[test]
    fn unreachable_blocks_not_in_tree() {
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        let dead = fb.create_block();
        fb.switch_to(e);
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        let f = fb.build().unwrap();
        let d = DomTree::compute(&f);
        assert!(!d.is_reachable(dead));
        assert!(!d.dominates(e, dead));
    }

    #[test]
    fn rpo_roundtrip() {
        let f = diamond();
        let d = DomTree::compute(&f);
        let rpo = d.rpo();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
    }
}
