//! Functions: the unit of compilation and simulation.

use crate::block::Block;
use crate::ids::{BlockId, Reg};

/// A function: a control-flow graph of [`Block`]s with a distinguished entry.
///
/// Registers `r0..r{params}` hold the arguments on entry. Blocks are stored
/// in a slot vector so [`BlockId`]s remain stable when blocks are removed.
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name (used in diagnostics and workload tables).
    pub name: String,
    blocks: Vec<Option<Block>>,
    /// Entry block.
    pub entry: BlockId,
    /// Number of parameters (passed in `r0..params`).
    pub params: u32,
    nregs: u32,
}

impl Function {
    /// Create an empty function with `params` parameters and a fresh, empty
    /// entry block.
    pub fn new(name: impl Into<String>, params: u32) -> Self {
        let mut f = Function {
            name: name.into(),
            blocks: Vec::new(),
            entry: BlockId(0),
            params,
            nregs: params,
        };
        let entry = f.add_block(Block::new());
        f.entry = entry;
        f
    }

    /// Allocate a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.nregs);
        self.nregs += 1;
        r
    }

    /// Number of virtual registers allocated so far.
    pub fn reg_count(&self) -> u32 {
        self.nregs
    }

    /// Record that registers up to `n` exist (used when splicing in code
    /// that was built against a larger register space).
    pub fn ensure_regs(&mut self, n: u32) {
        self.nregs = self.nregs.max(n);
    }

    /// Add a block, returning its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Some(block));
        id
    }

    /// Remove a block. Its id becomes a hole; edges into it become dangling
    /// (the caller must have retargeted them).
    ///
    /// # Panics
    /// Panics if `id` is the entry block or already removed.
    pub fn remove_block(&mut self, id: BlockId) {
        assert_ne!(id, self.entry, "cannot remove the entry block");
        let slot = &mut self.blocks[id.index()];
        assert!(slot.is_some(), "block {id} already removed");
        *slot = None;
    }

    /// Whether `id` refers to a live (not removed) block.
    pub fn contains_block(&self, id: BlockId) -> bool {
        self.blocks
            .get(id.index())
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    /// Borrow a block.
    ///
    /// # Panics
    /// Panics if the block was removed or never existed.
    pub fn block(&self, id: BlockId) -> &Block {
        self.blocks[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("block {id} does not exist"))
    }

    /// Mutably borrow a block.
    ///
    /// # Panics
    /// Panics if the block was removed or never existed.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        self.blocks[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("block {id} does not exist"))
    }

    /// Borrow a block if it exists.
    pub fn try_block(&self, id: BlockId) -> Option<&Block> {
        self.blocks.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Iterate over live block ids in id order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| BlockId(i as u32))
    }

    /// Iterate over `(id, block)` pairs in id order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|b| (BlockId(i as u32), b)))
    }

    /// Number of live blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.iter().filter(|s| s.is_some()).count()
    }

    /// Number of block *slots* (live blocks plus holes): one more than the
    /// largest id ever allocated. Dense per-slot side tables (liveness,
    /// dominators) index by `BlockId::index()` bounded by this.
    pub fn block_slots(&self) -> usize {
        self.blocks.len()
    }

    /// Total static instruction count (including exits, which occupy branch
    /// slots on TRIPS).
    pub fn static_size(&self) -> usize {
        self.blocks().map(|(_, b)| b.size()).sum()
    }

    /// Duplicate block `id`, returning the id of the copy. The copy shares
    /// registers with the original (no SSA); callers performing tail or head
    /// duplication rely on only one copy executing per dynamic path, or on
    /// sequential in-block ordering for unrolled copies.
    pub fn duplicate_block(&mut self, id: BlockId) -> BlockId {
        let mut copy = self.block(id).clone();
        if let Some(n) = &copy.name {
            copy.name = Some(format!("{n}'"));
        }
        copy.freq = 0.0;
        self.add_block(copy)
    }

    /// Capture a block-scoped snapshot sufficient to undo a transformation
    /// that (a) mutates or removes only the listed blocks, (b) appends new
    /// blocks, and (c) allocates fresh registers. Used by the convergent
    /// formation loop to run merge trials *in place* instead of cloning the
    /// whole function per trial; see [`Function::restore_blocks`].
    ///
    /// Duplicate ids in `ids` are saved once.
    pub fn snapshot_blocks<I>(&self, ids: I) -> BlocksSnapshot
    where
        I: IntoIterator<Item = BlockId>,
    {
        let mut saved: Vec<(BlockId, Option<Block>)> = Vec::new();
        for id in ids {
            if saved.iter().any(|(i, _)| *i == id) {
                continue;
            }
            saved.push((id, self.blocks.get(id.index()).cloned().flatten()));
        }
        BlocksSnapshot {
            saved,
            len: self.blocks.len(),
            nregs: self.nregs,
        }
    }

    /// Roll back to a snapshot taken by [`Function::snapshot_blocks`]:
    /// blocks added since the snapshot are dropped, the saved blocks are
    /// restored verbatim (including removal state), and the register count
    /// is rewound so register numbering in later trials is unaffected by
    /// rolled-back ones.
    ///
    /// The caller guarantees that no block *outside* the snapshot was
    /// mutated since the snapshot was taken; this is what makes the restore
    /// an exact inverse.
    pub fn restore_blocks(&mut self, snap: BlocksSnapshot) {
        debug_assert!(
            self.blocks.len() >= snap.len,
            "snapshot outlived a structural change it cannot undo"
        );
        self.blocks.truncate(snap.len);
        for (id, blk) in snap.saved {
            self.blocks[id.index()] = blk;
        }
        self.nregs = snap.nregs;
    }
}

/// An undo record for a block-scoped trial transformation; created by
/// [`Function::snapshot_blocks`], consumed by [`Function::restore_blocks`].
#[derive(Clone, Debug)]
pub struct BlocksSnapshot {
    /// Saved `(id, slot)` pairs — `None` marks a block that was already
    /// removed when the snapshot was taken.
    saved: Vec<(BlockId, Option<Block>)>,
    /// Length of the block slot vector at snapshot time; later additions
    /// are truncated away on restore.
    len: usize,
    /// Register count at snapshot time.
    nregs: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Exit;
    use crate::instr::{Instr, Operand};

    #[test]
    fn new_function_has_entry() {
        let f = Function::new("f", 2);
        assert_eq!(f.block_count(), 1);
        assert!(f.contains_block(f.entry));
        assert_eq!(f.reg_count(), 2);
    }

    #[test]
    fn register_allocation_is_monotonic() {
        let mut f = Function::new("f", 1);
        let a = f.new_reg();
        let b = f.new_reg();
        assert!(a < b);
        assert_eq!(f.reg_count(), 3);
        f.ensure_regs(10);
        assert_eq!(f.reg_count(), 10);
        f.ensure_regs(5);
        assert_eq!(f.reg_count(), 10);
    }

    #[test]
    fn remove_leaves_stable_ids() {
        let mut f = Function::new("f", 0);
        let b1 = f.add_block(Block::new());
        let b2 = f.add_block(Block::new());
        f.remove_block(b1);
        assert!(!f.contains_block(b1));
        assert!(f.contains_block(b2));
        assert_eq!(f.block_ids().collect::<Vec<_>>(), vec![f.entry, b2]);
    }

    #[test]
    #[should_panic(expected = "cannot remove the entry block")]
    fn removing_entry_panics() {
        let mut f = Function::new("f", 0);
        let entry = f.entry;
        f.remove_block(entry);
    }

    #[test]
    fn duplicate_block_copies_contents() {
        let mut f = Function::new("f", 0);
        let r = f.new_reg();
        let b = f.add_block(Block::new());
        f.block_mut(b).name = Some("L".into());
        f.block_mut(b).insts.push(Instr::mov(r, Operand::Imm(3)));
        f.block_mut(b).exits.push(Exit::ret(None));
        let c = f.duplicate_block(b);
        assert_eq!(f.block(c).insts, f.block(b).insts);
        assert_eq!(f.block(c).name.as_deref(), Some("L'"));
        assert_eq!(f.block(c).freq, 0.0);
    }

    #[test]
    fn snapshot_restores_mutation_removal_addition_and_regs() {
        let mut f = Function::new("f", 1);
        let e = f.entry;
        let b = f.add_block(Block::new());
        f.block_mut(b).exits.push(Exit::ret(None));
        let r = f.new_reg();
        f.block_mut(e).insts.push(Instr::mov(r, Operand::Imm(1)));
        let before = format!("{f:?}");
        let nregs = f.reg_count();

        let snap = f.snapshot_blocks([e, b, b]); // duplicate id: saved once
                                                 // Mutate e, remove b, add a block, allocate registers.
        let r2 = f.new_reg();
        f.block_mut(e).insts.push(Instr::mov(r2, Operand::Imm(2)));
        f.remove_block(b);
        let added = f.add_block(Block::new());
        assert!(f.contains_block(added));

        f.restore_blocks(snap);
        assert_eq!(format!("{f:?}"), before);
        assert_eq!(f.reg_count(), nregs);
        assert!(f.contains_block(b));
        assert!(!f.contains_block(added));
    }

    #[test]
    fn snapshot_restore_is_noop_without_changes() {
        let mut f = Function::new("f", 2);
        let e = f.entry;
        f.block_mut(e).exits.push(Exit::ret(None));
        let before = format!("{f:?}");
        let snap = f.snapshot_blocks([e]);
        f.restore_blocks(snap);
        assert_eq!(format!("{f:?}"), before);
    }

    #[test]
    fn static_size_sums_blocks() {
        let mut f = Function::new("f", 0);
        let e = f.entry;
        f.block_mut(e).exits.push(Exit::ret(None));
        let r = f.new_reg();
        f.block_mut(e).insts.push(Instr::mov(r, Operand::Imm(1)));
        assert_eq!(f.static_size(), 2);
    }
}
