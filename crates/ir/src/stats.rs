//! Static shape statistics of a function — block sizes, predication, exit
//! fan-out. Used by the evaluation harness to report how "converged" the
//! formed hyperblocks are relative to the structural constraints.

use crate::function::Function;

/// Summary of a function's static shape.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionStats {
    /// Number of live blocks.
    pub blocks: usize,
    /// Total instruction slots (instructions + exits).
    pub total_slots: usize,
    /// Size of the largest block in slots.
    pub max_block_slots: usize,
    /// Mean block size in slots.
    pub mean_block_slots: f64,
    /// Fraction of instructions that are predicated, in `[0, 1]`.
    pub predicated_fraction: f64,
    /// Total memory operations.
    pub memory_ops: usize,
    /// Maximum exits on one block.
    pub max_exits: usize,
    /// Blocks with a single exit (perfectly predictable).
    pub single_exit_blocks: usize,
}

impl FunctionStats {
    /// Measure `f`.
    pub fn of(f: &Function) -> FunctionStats {
        let mut blocks = 0usize;
        let mut total_slots = 0usize;
        let mut max_block_slots = 0usize;
        let mut insts = 0usize;
        let mut predicated = 0usize;
        let mut memory_ops = 0usize;
        let mut max_exits = 0usize;
        let mut single_exit_blocks = 0usize;
        for (_, blk) in f.blocks() {
            blocks += 1;
            let size = blk.size();
            total_slots += size;
            max_block_slots = max_block_slots.max(size);
            insts += blk.insts.len();
            predicated += blk.insts.iter().filter(|i| i.pred.is_some()).count();
            memory_ops += blk.memory_ops();
            max_exits = max_exits.max(blk.exits.len());
            if blk.exits.len() == 1 {
                single_exit_blocks += 1;
            }
        }
        FunctionStats {
            blocks,
            total_slots,
            max_block_slots,
            mean_block_slots: if blocks == 0 {
                0.0
            } else {
                total_slots as f64 / blocks as f64
            },
            predicated_fraction: if insts == 0 {
                0.0
            } else {
                predicated as f64 / insts as f64
            },
            memory_ops,
            max_exits,
            single_exit_blocks,
        }
    }

    /// How full the average block is relative to a slot budget, in `[0, 1]`.
    pub fn fill_ratio(&self, budget: usize) -> f64 {
        if budget == 0 {
            0.0
        } else {
            self.mean_block_slots / budget as f64
        }
    }
}

impl std::fmt::Display for FunctionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} blocks, {} slots (max {}, mean {:.1}), {:.0}% predicated, {} mem ops, max {} exits, {} single-exit",
            self.blocks,
            self.total_slots,
            self.max_block_slots,
            self.mean_block_slots,
            self.predicated_fraction * 100.0,
            self.memory_ops,
            self.max_exits,
            self.single_exit_blocks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{Instr, Operand, Pred};

    #[test]
    fn measures_shape() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let t = fb.create_block();
        fb.switch_to(e);
        let p = fb.cmp_gt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        let x = fb.fresh_reg();
        fb.push(Instr::mov(x, Operand::Imm(1)).predicated(Pred::on_true(p)));
        fb.store(Operand::Imm(0), Operand::Reg(x));
        fb.branch(p, t, t);
        fb.switch_to(t);
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        let s = FunctionStats::of(&f);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.memory_ops, 1);
        assert_eq!(s.max_exits, 2);
        assert_eq!(s.single_exit_blocks, 1);
        assert!((s.predicated_fraction - 1.0 / 3.0).abs() < 1e-9);
        assert!(s.max_block_slots >= 5);
        let shown = s.to_string();
        assert!(shown.contains("2 blocks"));
    }

    #[test]
    fn fill_ratio() {
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        for _ in 0..9 {
            let r = fb.mov(Operand::Imm(1));
            let _ = r;
        }
        fb.ret(None);
        let f = fb.build().unwrap();
        let s = FunctionStats::of(&f);
        assert_eq!(s.total_slots, 10);
        assert!((s.fill_ratio(20) - 0.5).abs() < 1e-9);
        assert_eq!(s.fill_ratio(0), 0.0);
    }
}
