//! Property-based tests over the IR's core data structures and analyses.

use chf_ir::cfg::{predecessors, reachable, reverse_postorder};
use chf_ir::dom::DomTree;
use chf_ir::liveness::Liveness;
use chf_ir::loops::LoopForest;
use chf_ir::parse::parse_function;
use chf_ir::testgen::{generate, GenConfig};
use chf_ir::verify::verify;
use chf_sim::functional::{run, RunConfig};
use proptest::prelude::*;

fn gen_config() -> impl Strategy<Value = GenConfig> {
    (1u32..4, 2u32..8, 0u64..6, 3u32..8, any::<bool>()).prop_map(
        |(max_depth, max_stmts, max_trips, num_vars, memory_ops)| GenConfig {
            max_depth,
            max_stmts,
            max_trips,
            num_vars,
            memory_ops,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated program satisfies the structural invariants.
    #[test]
    fn generated_programs_verify(seed in any::<u64>(), cfg in gen_config()) {
        let f = generate(seed, &cfg);
        prop_assert!(verify(&f).is_ok());
    }

    /// Reverse postorder visits exactly the reachable blocks, starting at
    /// the entry, and predecessors/successors agree.
    #[test]
    fn rpo_and_reachability_agree(seed in any::<u64>(), cfg in gen_config()) {
        let f = generate(seed, &cfg);
        let rpo = reverse_postorder(&f);
        let reach = reachable(&f);
        prop_assert_eq!(rpo.len(), reach.len());
        prop_assert_eq!(rpo[0], f.entry);
        for b in &rpo {
            prop_assert!(reach.contains(b));
        }
        let preds = predecessors(&f);
        for (b, ps) in &preds {
            for p in ps {
                prop_assert!(
                    f.block(*p).successors().any(|s| s == *b),
                    "pred edge {p} -> {b} has no matching successor"
                );
            }
        }
    }

    /// Dominator-tree sanity: the entry dominates every reachable block,
    /// immediate dominators strictly dominate their children, and
    /// domination is consistent with reachability.
    #[test]
    fn dominator_invariants(seed in any::<u64>(), cfg in gen_config()) {
        let f = generate(seed, &cfg);
        let dom = DomTree::compute(&f);
        for b in reachable(&f) {
            prop_assert!(dom.dominates(f.entry, b), "entry must dominate {b}");
            prop_assert!(dom.dominates(b, b), "domination is reflexive");
            if b != f.entry {
                let idom = dom.idom(b).expect("reachable blocks have idoms");
                prop_assert!(dom.strictly_dominates(idom, b));
            }
        }
    }

    /// Natural-loop invariants: the header is in the body, dominates every
    /// body block, and every back-edge source is in the body.
    #[test]
    fn loop_invariants(seed in any::<u64>(), cfg in gen_config()) {
        let f = generate(seed, &cfg);
        let dom = DomTree::compute(&f);
        let forest = LoopForest::compute(&f, &dom);
        for l in &forest.loops {
            prop_assert!(l.body.contains(&l.header));
            for b in &l.body {
                prop_assert!(dom.dominates(l.header, *b), "header must dominate {b}");
            }
            for (u, v) in &l.back_edges {
                prop_assert_eq!(*v, l.header);
                prop_assert!(l.body.contains(u));
            }
        }
    }

    /// Liveness consistency: register reads are live-in; a block's live-out
    /// is the union of its successors' live-ins.
    #[test]
    fn liveness_invariants(seed in any::<u64>(), cfg in gen_config()) {
        let f = generate(seed, &cfg);
        let lv = Liveness::compute(&f);
        for (b, blk) in f.blocks() {
            for r in lv.register_reads(b) {
                prop_assert!(lv.live_in(b).contains(&r));
            }
            let mut union = chf_ir::fxhash::FxHashSet::default();
            for s in blk.successors() {
                union.extend(lv.live_in(s).iter());
            }
            prop_assert_eq!(lv.live_out(b).to_set(), union, "live-out of {} mismatch", b);
        }
    }

    /// The printer and parser are inverse: print → parse → print is a
    /// fixpoint for freshly built functions.
    #[test]
    fn print_parse_round_trip(seed in any::<u64>(), cfg in gen_config()) {
        let f = generate(seed, &cfg);
        let text = f.to_string();
        let parsed = parse_function(&text).expect("printer output must parse");
        prop_assert_eq!(parsed.to_string(), text);
        // And the reparsed function behaves identically.
        let a = run(&f, &[3, 4], &[], &RunConfig::default()).unwrap();
        let b = run(&parsed, &[3, 4], &[], &RunConfig::default()).unwrap();
        prop_assert_eq!(a.digest(), b.digest());
    }

    /// Exit deduplication preserves observable behaviour.
    #[test]
    fn dedupe_exits_preserves_behaviour(
        seed in any::<u64>(),
        cfg in gen_config(),
        a in -50i64..50,
        b in -50i64..50,
    ) {
        let f0 = generate(seed, &cfg);
        let mut f1 = f0.clone();
        let ids: Vec<_> = f1.block_ids().collect();
        for id in ids {
            f1.block_mut(id).dedupe_exits();
        }
        prop_assert!(verify(&f1).is_ok());
        let r0 = run(&f0, &[a, b], &[], &RunConfig::default()).unwrap();
        let r1 = run(&f1, &[a, b], &[], &RunConfig::default()).unwrap();
        prop_assert_eq!(r0.digest(), r1.digest());
    }

    /// Execution is deterministic: the same program and inputs always give
    /// the same outcome and counters.
    #[test]
    fn execution_is_deterministic(seed in any::<u64>(), a in -100i64..100) {
        let f = generate(seed, &GenConfig::default());
        let r0 = run(&f, &[a, 1], &[], &RunConfig::default()).unwrap();
        let r1 = run(&f, &[a, 1], &[], &RunConfig::default()).unwrap();
        prop_assert_eq!(r0.digest(), r1.digest());
        prop_assert_eq!(r0.blocks_executed, r1.blocks_executed);
        prop_assert_eq!(r0.insts_executed, r1.insts_executed);
    }
}
