//! Property tests for CFG-shape fingerprints: the shape must be invariant
//! under value (register) renaming and block-label permutation — the two
//! "same program, different numbering" transformations a shape cache must
//! see through — while still distinguishing genuinely different control
//! structure (loop-nest depth).

use chf_ir::block::{Block, ExitTarget};
use chf_ir::builder::FunctionBuilder;
use chf_ir::fingerprint::{shape_fingerprint, CfgShape};
use chf_ir::function::Function;
use chf_ir::fxhash::FxHashMap;
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::Operand;
use chf_ir::profile::ProfileData;
use chf_ir::testgen::{generate, GenConfig};
use chf_ir::verify::verify;
use chf_sim::functional::{profile_run, run, RunConfig};
use proptest::prelude::*;

/// SplitMix64 — the deterministic shuffle source (the in-tree proptest
/// shim does not expose an RNG to test bodies).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Rename every non-parameter register through a seeded permutation of the
/// register space. Parameters (`r0..params`) keep their ABI slots, so the
/// renamed function is behaviourally identical.
fn rename_registers(f: &Function, seed: u64) -> Function {
    let params = f.params;
    let mut tail: Vec<u32> = (params..f.reg_count()).collect();
    shuffle(&mut tail, seed);
    let map = |r: Reg| -> Reg {
        if r.0 < params {
            r
        } else {
            Reg(tail[(r.0 - params) as usize])
        }
    };
    let map_op = |op: Operand| -> Operand {
        match op {
            Operand::Reg(r) => Operand::Reg(map(r)),
            imm => imm,
        }
    };
    let mut g = f.clone();
    let ids: Vec<BlockId> = g.block_ids().collect();
    for id in ids {
        let blk = g.block_mut(id);
        for inst in &mut blk.insts {
            inst.dst = inst.dst.map(map);
            inst.a = inst.a.map(map_op);
            inst.b = inst.b.map(map_op);
            if let Some(p) = &mut inst.pred {
                p.reg = map(p.reg);
            }
        }
        for e in &mut blk.exits {
            if let Some(p) = &mut e.pred {
                p.reg = map(p.reg);
            }
            if let ExitTarget::Return(Some(op)) = &mut e.target {
                *op = map_op(*op);
            }
        }
    }
    g
}

/// Rebuild `f` with its blocks stored under a seeded permutation of labels
/// (slot order), retargeting every edge and rekeying the profile to match.
/// The result is the same CFG under different block ids.
fn permute_blocks(f: &Function, profile: &ProfileData, seed: u64) -> (Function, ProfileData) {
    let mut order: Vec<BlockId> = f.block_ids().collect();
    shuffle(&mut order, seed);
    let map: FxHashMap<BlockId, BlockId> = order
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, BlockId(new as u32)))
        .collect();

    let mut g = Function::new(f.name.clone(), f.params);
    g.ensure_regs(f.reg_count());
    for _ in 1..order.len() {
        g.add_block(Block::new());
    }
    for (new, &old) in order.iter().enumerate() {
        let mut blk = f.block(old).clone();
        for e in &mut blk.exits {
            if let ExitTarget::Block(t) = e.target {
                e.target = ExitTarget::Block(map[&t]);
            }
        }
        *g.block_mut(BlockId(new as u32)) = blk;
    }
    g.entry = map[&f.entry];

    let mut p = ProfileData::default();
    for (b, n) in &profile.block_counts {
        p.block_counts.insert(map[b], *n);
    }
    for ((b, k), n) in &profile.exit_counts {
        p.exit_counts.insert((map[b], *k), *n);
    }
    for (b, h) in &profile.trip_histograms {
        p.trip_histograms.insert(map[b], h.clone());
    }
    (g, p)
}

fn gen_config() -> impl Strategy<Value = GenConfig> {
    (1u32..4, 2u32..8, 0u64..6, 3u32..8, any::<bool>()).prop_map(
        |(max_depth, max_stmts, max_trips, num_vars, memory_ops)| GenConfig {
            max_depth,
            max_stmts,
            max_trips,
            num_vars,
            memory_ops,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Register renaming changes no shape component: the renamed function
    /// is behaviourally identical and fingerprints identically.
    #[test]
    fn fingerprint_invariant_under_register_renaming(
        seed in any::<u64>(),
        rename_seed in any::<u64>(),
        cfg in gen_config(),
    ) {
        let f = generate(seed, &cfg);
        let args: Vec<i64> = (0..f.params).map(|i| i as i64 + 3).collect();
        let profile = profile_run(&f, &args, &[]).unwrap_or_default();
        let g = rename_registers(&f, rename_seed);
        prop_assert!(verify(&g).is_ok(), "renaming broke the function");
        let a = run(&f, &args, &[], &RunConfig::default()).unwrap();
        let b = run(&g, &args, &[], &RunConfig::default()).unwrap();
        prop_assert_eq!(a.digest(), b.digest(), "renaming changed behaviour");
        prop_assert_eq!(
            CfgShape::of(&f, &profile),
            CfgShape::of(&g, &profile),
            "shape saw through to register numbers"
        );
        prop_assert_eq!(shape_fingerprint(&f, &profile), shape_fingerprint(&g, &profile));
    }

    /// Block-label permutation changes no shape component: the same CFG
    /// stored under different block ids (with the profile rekeyed to
    /// match) fingerprints identically.
    #[test]
    fn fingerprint_invariant_under_block_permutation(
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
        cfg in gen_config(),
    ) {
        let f = generate(seed, &cfg);
        let args: Vec<i64> = (0..f.params).map(|i| i as i64 + 3).collect();
        let profile = profile_run(&f, &args, &[]).unwrap_or_default();
        let (g, gp) = permute_blocks(&f, &profile, perm_seed);
        prop_assert!(verify(&g).is_ok(), "permutation broke the function");
        let a = run(&f, &args, &[], &RunConfig::default()).unwrap();
        let b = run(&g, &args, &[], &RunConfig::default()).unwrap();
        prop_assert_eq!(a.digest(), b.digest(), "permutation changed behaviour");
        prop_assert_eq!(
            CfgShape::of(&f, &profile),
            CfgShape::of(&g, &gp),
            "shape saw through to block labels"
        );
        prop_assert_eq!(shape_fingerprint(&f, &profile), shape_fingerprint(&g, &gp));
    }

    /// Both numbering transformations composed still fingerprint
    /// identically.
    #[test]
    fn fingerprint_invariant_under_composed_renamings(
        seed in any::<u64>(),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        cfg in gen_config(),
    ) {
        let f = generate(seed, &cfg);
        let args: Vec<i64> = (0..f.params).map(|i| i as i64 + 3).collect();
        let profile = profile_run(&f, &args, &[]).unwrap_or_default();
        let (g, gp) = permute_blocks(&rename_registers(&f, s1), &profile, s2);
        prop_assert_eq!(shape_fingerprint(&f, &profile), shape_fingerprint(&g, &gp));
    }
}

/// The fingerprint is not vacuous: nested loops of different depths must
/// land in different shapes (the loop-depth histogram separates them).
#[test]
fn fingerprint_distinguishes_loop_nest_depths() {
    fn nest(depth: usize) -> Function {
        let mut fb = FunctionBuilder::new("nest", 1);
        let entry = fb.create_block();
        let exit = fb.create_block();
        let loops: Vec<(BlockId, BlockId)> = (0..depth)
            .map(|_| (fb.create_block(), fb.create_block()))
            .collect();
        fb.switch_to(entry);
        let n = fb.param(0);
        let counters: Vec<Reg> = (0..depth).map(|_| fb.mov(Operand::Imm(0))).collect();
        fb.jump(loops[0].0);
        for d in 0..depth {
            let (header, latch) = loops[d];
            fb.switch_to(header);
            let c = fb.cmp_lt(Operand::Reg(counters[d]), Operand::Reg(n));
            let inner = if d + 1 < depth { loops[d + 1].0 } else { latch };
            fb.branch(c, inner, if d == 0 { exit } else { loops[d - 1].1 });
            fb.switch_to(latch);
            let inc = fb.add(Operand::Reg(counters[d]), Operand::Imm(1));
            fb.mov_to(counters[d], Operand::Reg(inc));
            fb.jump(header);
        }
        fb.switch_to(exit);
        fb.ret(Some(Operand::Reg(n)));
        fb.build().unwrap()
    }

    let p = ProfileData::default();
    let prints: Vec<u64> = (1..=4).map(|d| shape_fingerprint(&nest(d), &p)).collect();
    for i in 0..prints.len() {
        for j in (i + 1)..prints.len() {
            assert_ne!(
                prints[i],
                prints[j],
                "depth {} and {} collide",
                i + 1,
                j + 1
            );
        }
    }
    assert_eq!(CfgShape::of(&nest(3), &p).max_loop_depth(), 3);
}
