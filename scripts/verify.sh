#!/usr/bin/env sh
# Repo verification gate, split into composable steps so CI can run (and
# report) each one separately while local use stays one command:
#
#   scripts/verify.sh            # everything, in order (same as `all`)
#   scripts/verify.sh all        # fmt, build, lint, test, perf, smoke,
#                                # sim-shard, tournament, corpus, chaos,
#                                # service
#   scripts/verify.sh fmt        # cargo fmt --check (first CI step)
#   scripts/verify.sh build      # cargo build --release --locked
#   scripts/verify.sh lint       # cargo clippy --workspace -- -D warnings
#   scripts/verify.sh test       # cargo test -q (tier-1 suite)
#   scripts/verify.sh perf       # bench_perf --check (perf regression gate)
#   scripts/verify.sh smoke      # whole_program --smoke
#   scripts/verify.sh sim-shard  # whole_program --shard-smoke (sharded
#                                # simulation: stitch + scaling probe)
#   scripts/verify.sh tournament # policy-tournament gate: portfolio
#                                # dominance over every fixed column,
#                                # winner determinism at 1/2/8 workers,
#                                # CSV byte-stability, shape-cache hot
#                                # path
#   scripts/verify.sh corpus     # trace-corpus gate: replay every entry
#                                # under tests/corpus/ (zero drift, <10 s),
#                                # then a 500-fault + coverage-guided fuzz
#                                # smoke; summary at
#                                # results/corpus_summary.json
#   scripts/verify.sh chaos [N]  # fault-injection campaign (default 500)
#   scripts/verify.sh service [N] # compile-service gate: concurrent soak
#                                # with ~5% injected faults (default 200
#                                # requests), then a full service-level
#                                # chaos campaign (500 faults, 4 clients)
#
# Steps may be chained: `scripts/verify.sh fmt build lint`.
#
# Environment knobs (all optional):
#
#   CHF_BENCH_CEILING_MS     Wall-time ceiling for the end-to-end Table 1
#                            regeneration in `perf` (default 100). Raise on
#                            slow or shared machines, e.g. CI runners.
#   CHF_BENCH_SIM_FLOOR_MCPS Per-call simulator throughput floor in
#                            Mcycles/s for `perf` (default 23.8). Lower on
#                            slow machines.
#   CHF_SHARD_OVERHEAD_CEILING Max allowed unsharded/1-worker-sharded
#                            throughput ratio in `perf` (default 2.5):
#                            bounds the fixed cost of shard bookkeeping.
#                            Raise on noisy machines.
#   CHF_JOBS                 Worker count for the parallel evaluation
#                            harness (default: available parallelism).
#   CHF_SIM_SCALE_FLOOR      Minimum multi-worker / single-worker
#                            throughput ratio for `sim-shard` (default 0,
#                            i.e. disabled — set it on machines with
#                            enough cores to make a speedup meaningful).
#   CHF_FAULT_SEED           Pins the `chaos` campaign's fault stream so a
#                            CI failure is replayable locally.
#   CHF_CORPUS_REPLAY_CEILING_S  Wall-time budget for the `corpus` replay
#                            pass (default 10). Raise on slow machines —
#                            or prune the corpus.
#   CHF_BLESS                Set to re-capture golden snapshots under
#                            `test` after an intentional formation change.
set -eu

cd "$(dirname "$0")/.."

run_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
}

run_build() {
    # --locked: any Cargo.lock drift (a dependency edit without a committed
    # lockfile update) fails here, fast, instead of surfacing as confusing
    # cache misses or version skew in later steps.
    echo "==> cargo build --release --locked"
    cargo build --release --locked
}

run_lint() {
    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace -- -D warnings
}

run_test() {
    echo "==> cargo test -q"
    cargo test -q
}

# Asserts the end-to-end Table 1 regeneration stays under a generous
# wall-time ceiling, that per-call simulator throughput stays above the
# post-event-core floor, and that the parallel harness produces
# byte-identical output to the sequential path.
run_perf() {
    echo "==> bench_perf --check"
    cargo run --release -p chf-bench --bin bench_perf -- --check
}

# Cycle-simulates a bounded prefix of the SPEC-like composite workloads
# end-to-end through the event-driven core and checks the
# measured-vs-model comparison is produced.
run_smoke() {
    echo "==> whole_program --smoke (whole-program cycle-simulation smoke)"
    cargo run --release -p chf-bench --bin whole_program -- --smoke
}

# Cycle-simulates the convergent form of every composite through the
# sharded simulator at several worker counts, cross-checks every stitched
# cycle count against the sequential engine, archives
# results/sim_scaling.csv, and fails on any stitch fallback (or, when
# CHF_SIM_SCALE_FLOOR is set, on insufficient multi-worker speedup).
run_sim_shard() {
    echo "==> whole_program --shard-smoke (sharded simulation gate)"
    cargo run --release -p chf-bench --bin whole_program -- --shard-smoke
}

# Runs the per-function policy-tournament gate over the 19 composites:
# the portfolio winner must dominate every fixed policy column, winners
# and the table2_budget CSV (portfolio columns included) must be
# byte-identical at 1/2/8 workers and match the committed archive, and a
# second pass through one service must be answered by the CFG-shape
# winner cache (hot path = one entrant). On CSV mismatch the regenerated
# file is left at results/table2_budget.regenerated.csv as a failure
# artifact.
run_tournament() {
    echo "==> tournament (policy-tournament + shape-cache gate)"
    cargo run --release -p chf-bench --bin tournament
}

# Replays every persistent trace-corpus entry through compile → oracle →
# event-sim and fails on any digest or outcome drift, then runs the
# CI-blocking fuzz smoke (500 chaos faults feeding the coverage map plus a
# short coverage-guided generation loop). The one-line JSON summary lands
# in results/corpus_summary.json for CI failure artifacts.
run_corpus() {
    echo "==> fuzz --smoke (trace-corpus replay + coverage-guided fuzz smoke)"
    cargo run --release -p chf-bench --bin fuzz -- --smoke
}

# Injects N seeded faults (IR corruption, profile corruption, scrambled
# ordering inputs, mid-trial corruption) and fails on any process abort
# or undetected miscompile.
run_chaos() {
    faults="${1:-500}"
    echo "==> chaos ${faults} (fault-injection smoke campaign)"
    cargo run --release -p chf-bench --bin chaos -- "${faults}"
}

# Soaks a live compile service with concurrent clients (~5% of requests
# carry an injected fault), requiring every request to reach a terminal
# state with sane stats, then runs the full service-level chaos campaign
# (all fault kinds incl. corrupted-cache-entry, 4 concurrent clients,
# zero aborts / miscompiles / hung requests). The service's stats snapshot
# lands in results/service_stats.json for CI failure artifacts.
run_service() {
    requests="${1:-200}"
    echo "==> chaos --service-soak ${requests} (compile-service soak smoke)"
    cargo run --release -p chf-bench --bin chaos -- --service-soak "${requests}" --clients 8
    echo "==> chaos --service 500 (service-level fault campaign)"
    cargo run --release -p chf-bench --bin chaos -- --service 500 --clients 4
}

run_all() {
    run_fmt
    run_build
    run_lint
    run_test
    run_perf
    run_smoke
    run_sim_shard
    run_tournament
    run_corpus
    run_chaos "${1:-500}"
    run_service
}

if [ "$#" -eq 0 ]; then
    run_all
    echo "verify.sh: all checks passed"
    exit 0
fi

while [ "$#" -gt 0 ]; do
    step="$1"
    shift
    case "${step}" in
        fmt) run_fmt ;;
        build) run_build ;;
        lint) run_lint ;;
        test) run_test ;;
        perf) run_perf ;;
        smoke) run_smoke ;;
        sim-shard) run_sim_shard ;;
        tournament) run_tournament ;;
        corpus) run_corpus ;;
        chaos)
            # Optional numeric fault count following `chaos`.
            case "${1:-}" in
                '' | *[!0-9]*) run_chaos ;;
                *)
                    run_chaos "$1"
                    shift
                    ;;
            esac
            ;;
        service)
            # Optional numeric soak-request count following `service`.
            case "${1:-}" in
                '' | *[!0-9]*) run_service ;;
                *)
                    run_service "$1"
                    shift
                    ;;
            esac
            ;;
        all) run_all ;;
        *)
            echo "verify.sh: unknown step '${step}'" >&2
            echo "usage: scripts/verify.sh [fmt|build|lint|test|perf|smoke|sim-shard|tournament|corpus|chaos [N]|service [N]|all]..." >&2
            exit 2
            ;;
    esac
done

echo "verify.sh: requested checks passed"
