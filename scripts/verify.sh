#!/usr/bin/env sh
# Repo verification gate: build, full test suite, and the performance
# regression check.
#
#   scripts/verify.sh
#
# The perf check (`bench_perf --check`) asserts the end-to-end Table 1
# regeneration stays under a generous wall-time ceiling (default 160 ms;
# override with CHF_BENCH_CEILING_MS for slower machines) and that the
# parallel harness produces byte-identical output to the sequential path.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> bench_perf --check"
cargo run --release -p chf-bench --bin bench_perf -- --check

echo "verify.sh: all checks passed"
