#!/usr/bin/env sh
# Repo verification gate: build, lint, full test suite, performance
# regression check, and a bounded fault-injection smoke campaign.
#
#   scripts/verify.sh
#
# The perf check (`bench_perf --check`) asserts the end-to-end Table 1
# regeneration stays under a generous wall-time ceiling (default 100 ms;
# override with CHF_BENCH_CEILING_MS for slower machines), that per-call
# simulator throughput stays above the post-event-core floor (default
# 24 Mcycles/s; override with CHF_BENCH_SIM_FLOOR_MCPS), and that the
# parallel harness produces byte-identical output to the sequential path.
#
# The whole-program smoke (`whole_program --smoke`) cycle-simulates a
# bounded prefix of the SPEC-like composite workloads end-to-end through
# the event-driven core and checks the measured-vs-model comparison is
# produced, keeping whole-program simulation inside the CI time budget.
#
# The chaos smoke campaign injects 500 seeded faults (IR corruption,
# profile corruption, mid-trial corruption) and fails on any process
# abort or undetected miscompile. Pin a failing stream with
# CHF_FAULT_SEED to replay it.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> bench_perf --check"
cargo run --release -p chf-bench --bin bench_perf -- --check

echo "==> whole_program --smoke (whole-program cycle-simulation smoke)"
cargo run --release -p chf-bench --bin whole_program -- --smoke

echo "==> chaos 500 (fault-injection smoke campaign)"
cargo run --release -p chf-bench --bin chaos -- 500

echo "verify.sh: all checks passed"
